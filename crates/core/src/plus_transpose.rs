//! The `A + Aᵀ` symmetrization (§3.1).
//!
//! The simplest possible symmetrization — drop edge directions, summing the
//! weights of reciprocal edge pairs. This is the *implicit* symmetrization
//! used by most prior work that "simply ignores directionality", included as
//! the primary baseline. Its failure mode is exactly Figure 1: nodes that
//! share links without linking to each other stay disconnected.

use crate::{Result, SymmetrizedGraph, Symmetrizer};
use std::time::Instant;
use symclust_graph::{DiGraph, UnGraph};
use symclust_sparse::ops;

/// `U = A + Aᵀ`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlusTranspose;

impl Symmetrizer for PlusTranspose {
    fn name(&self) -> String {
        "A+A'".to_string()
    }

    fn symmetrize(&self, g: &DiGraph) -> Result<SymmetrizedGraph> {
        let start = Instant::now();
        let u = ops::plus_transpose(g.adjacency())?;
        let mut un = UnGraph::from_symmetric_unchecked(u);
        if let Some(labels) = g.labels() {
            un = un.with_labels(labels.to_vec())?;
        }
        Ok(SymmetrizedGraph::new(un, self.name(), 0.0, start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::figure1_graph;

    #[test]
    fn sums_reciprocal_edge_weights() {
        let g = DiGraph::from_weighted_edges(2, &[(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let s = PlusTranspose.symmetrize(&g).unwrap();
        assert_eq!(s.adjacency().get(0, 1), 5.0);
        assert_eq!(s.adjacency().get(1, 0), 5.0);
    }

    #[test]
    fn preserves_edge_set_structure() {
        let g = figure1_graph();
        let s = PlusTranspose.symmetrize(&g).unwrap();
        // Every original edge survives, undirected.
        for (u, v, _) in g.edges() {
            assert!(s.adjacency().get(u, v as usize) > 0.0);
        }
        // The Figure-1 failure mode: nodes 4 and 5 stay disconnected.
        assert_eq!(s.adjacency().get(4, 5), 0.0);
    }

    #[test]
    fn output_is_symmetric() {
        let g = figure1_graph();
        let s = PlusTranspose.symmetrize(&g).unwrap();
        assert!(s.adjacency().is_symmetric(0.0));
    }

    #[test]
    fn propagates_labels() {
        let g = DiGraph::from_edges(2, &[(0, 1)])
            .unwrap()
            .with_labels(vec!["a".into(), "b".into()])
            .unwrap();
        let s = PlusTranspose.symmetrize(&g).unwrap();
        assert_eq!(s.graph().label(1), "b");
    }

    #[test]
    fn name_matches_paper_notation() {
        assert_eq!(PlusTranspose.name(), "A+A'");
    }
}

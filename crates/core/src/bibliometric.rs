//! Bibliometric symmetrization (§3.3): `U = AAᵀ + AᵀA`.
//!
//! `AAᵀ` is Kessler's bibliographic-coupling matrix — entry `(i, j)` counts
//! the out-links `i` and `j` share — and `AᵀA` is Small's co-citation matrix
//! counting shared in-links. Their sum connects exactly the node pairs with
//! shared links, fixing the Figure-1 drawback of `A + Aᵀ`. The paper notes
//! the combined `AAᵀ + AᵀA` had not been used for clustering before.
//!
//! Following the paper, `A := A + I` is applied first (configurable) so that
//! original edges survive: with the identity added, `i → j` contributes
//! `A(i,·)·A(j,·) ≥ A(i,j)·A(j,j) = A(i,j)` to the coupling count.
//!
//! On power-law graphs hub nodes make this matrix both dense and
//! hub-dominated (§3.4/§3.5) — the motivation for degree discounting.

use crate::{Result, SymmetrizedGraph, Symmetrizer};
use std::time::Instant;
use symclust_graph::{DiGraph, UnGraph};
use symclust_obs::MetricsRegistry;
use symclust_sparse::{
    accum_from_env, ops, spgemm_syrk_sum_budgeted, spgemm_syrk_sum_observed, threads_from_env,
    AccumStrategy, CancelToken, PanelPlan, SpgemmOptions, SyrkTerm,
};

/// Options for [`Bibliometric`].
#[derive(Debug, Clone)]
pub struct BibliometricOptions {
    /// Apply `A := A + I` before multiplying (paper §3.3). Default true.
    pub add_identity: bool,
    /// Prune threshold applied to the fused sum `AAᵀ + AᵀA` during the
    /// multiply (Table 2 uses e.g. 25 for Wikipedia, 0 for Cora).
    /// Default 0.
    pub threshold: f64,
    /// SpGEMM worker threads: `1` runs serially, `0` uses all available
    /// cores, `n` uses exactly `n`. The default honors the
    /// `SYMCLUST_THREADS` environment variable and falls back to serial.
    /// Output is bit-identical for every setting.
    pub n_threads: usize,
    /// Memory budget as a cap on the stored nnz of the similarity matrix.
    /// When the Gustavson upper bound exceeds it, the product degrades to
    /// an adaptively thresholded multiply instead of aborting; the result
    /// is flagged [`SymmetrizedGraph::degraded`]. Default `None` (exact).
    pub nnz_budget: Option<usize>,
    /// Per-row accumulator strategy for the SpGEMM kernels. Like
    /// `n_threads`, this never changes output bytes — only which code path
    /// produces them. The default honors `SYMCLUST_ACCUM` and falls back
    /// to adaptive.
    pub accum: AccumStrategy,
    /// Out-of-core panel plan for the SpGEMM kernels. When engaged the
    /// multiply runs tile by tile and may spill partial products to scratch
    /// files, bit-identical to the in-memory path. Never part of cache
    /// keys. The default honors `SYMCLUST_PANEL_ROWS` /
    /// `SYMCLUST_MEMORY_BUDGET` and falls back to disengaged (in-memory).
    pub panel: PanelPlan,
}

impl Default for BibliometricOptions {
    fn default() -> Self {
        BibliometricOptions {
            add_identity: true,
            threshold: 0.0,
            n_threads: threads_from_env().unwrap_or(1),
            nnz_budget: None,
            accum: accum_from_env().unwrap_or_default(),
            panel: PanelPlan::from_env(),
        }
    }
}

/// `U = AAᵀ + AᵀA` (bibliographic coupling + co-citation).
#[derive(Debug, Clone, Default)]
pub struct Bibliometric {
    /// Execution options.
    pub options: BibliometricOptions,
}

impl Bibliometric {
    /// Creates the symmetrizer with a prune threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        Bibliometric {
            options: BibliometricOptions {
                threshold,
                ..Default::default()
            },
        }
    }

    fn symmetrize_with(
        &self,
        g: &DiGraph,
        token: Option<&CancelToken>,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<SymmetrizedGraph> {
        let start = Instant::now();
        let a_base = g.adjacency();
        let a = if self.options.add_identity {
            ops::add_diagonal(a_base, 1.0)?
        } else {
            a_base.clone()
        };
        let at = ops::transpose(&a);
        // One fused symmetric multiply: AAᵀ = A·(A)ᵀ and AᵀA = Aᵀ·(Aᵀ)ᵀ
        // are both X·Xᵀ terms, accumulated upper-triangle-only in a single
        // pass with the sum thresholded during emission and mirrored —
        // neither full product is ever materialized.
        let opts = SpgemmOptions {
            threshold: self.options.threshold,
            drop_diagonal: true,
            n_threads: self.options.n_threads,
            accum: self.options.accum,
            panel: self.options.panel.clone(),
            ..Default::default()
        };
        let terms = [
            SyrkTerm { x: &a, xt: &at }, // AAᵀ (coupling)
            SyrkTerm { x: &at, xt: &a }, // AᵀA (co-citation)
        ];
        let (u, degraded) = if let Some(budget) = self.options.nnz_budget {
            let r = spgemm_syrk_sum_budgeted(&terms, &opts, budget, token, metrics)?;
            (r.matrix, r.degraded)
        } else {
            (
                spgemm_syrk_sum_observed(&terms, &opts, token, metrics)?,
                false,
            )
        };
        let mut un = UnGraph::from_symmetric_unchecked(u);
        if let Some(labels) = g.labels() {
            un = un.with_labels(labels.to_vec())?;
        }
        Ok(
            SymmetrizedGraph::new(un, self.name(), self.options.threshold, start.elapsed())
                .with_degraded(degraded),
        )
    }
}

impl Symmetrizer for Bibliometric {
    fn name(&self) -> String {
        "Bibliometric".to_string()
    }

    fn symmetrize(&self, g: &DiGraph) -> Result<SymmetrizedGraph> {
        self.symmetrize_with(g, None, None)
    }

    fn symmetrize_cancellable(&self, g: &DiGraph, token: &CancelToken) -> Result<SymmetrizedGraph> {
        self.symmetrize_with(g, Some(token), None)
    }

    fn symmetrize_observed(
        &self,
        g: &DiGraph,
        token: &CancelToken,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<SymmetrizedGraph> {
        self.symmetrize_with(g, Some(token), metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::{figure1_graph, star_graph};

    fn no_identity() -> Bibliometric {
        Bibliometric {
            options: BibliometricOptions {
                add_identity: false,
                ..Default::default()
            },
        }
    }

    #[test]
    fn cancelled_token_aborts_and_live_token_matches() {
        let g = figure1_graph();
        let token = CancelToken::new();
        let same = Bibliometric::default()
            .symmetrize_cancellable(&g, &token)
            .unwrap();
        let plain = Bibliometric::default().symmetrize(&g).unwrap();
        assert_eq!(same.adjacency(), plain.adjacency());
        token.cancel();
        let err = Bibliometric::default()
            .symmetrize_cancellable(&g, &token)
            .unwrap_err();
        assert!(err.is_cancelled(), "got {err:?}");
    }

    #[test]
    fn connects_figure1_pair() {
        let g = figure1_graph();
        let s = no_identity().symmetrize(&g).unwrap();
        // Nodes 4 and 5 share 3 out-links (6,7,8) + node 0, and 3 in-links
        // (1,2,3) + node 0: coupling 4, co-citation 4 → weight 8.
        assert_eq!(s.adjacency().get(4, 5), 8.0);
    }

    #[test]
    fn counts_match_definitions() {
        // A: 0->2, 1->2 ; coupling(0,1) = 1 shared out-link, cocitation = 0.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let s = no_identity().symmetrize(&g).unwrap();
        assert_eq!(s.adjacency().get(0, 1), 1.0);
        // Node 2 is commonly pointed-to: cocitation(2, x) = 0 for others...
        assert_eq!(s.adjacency().get(0, 2), 0.0);
    }

    #[test]
    fn add_identity_preserves_original_edges() {
        let g = figure1_graph();
        let without = no_identity().symmetrize(&g).unwrap();
        // Edge 1→4 exists but 1 and 4 share no links: absent without +I.
        assert_eq!(without.adjacency().get(1, 4), 0.0);
        let with = Bibliometric::default().symmetrize(&g).unwrap();
        assert!(with.adjacency().get(1, 4) > 0.0, "original edge lost");
    }

    #[test]
    fn output_is_symmetric() {
        let g = figure1_graph();
        let s = Bibliometric::default().symmetrize(&g).unwrap();
        assert!(s.adjacency().is_symmetric(1e-12));
    }

    #[test]
    fn hub_creates_dense_rows() {
        // Star: all leaves point at 0 → co-citation connects every leaf
        // pair: the quadratic blow-up the paper warns about.
        let g = star_graph(10);
        let s = no_identity().symmetrize(&g).unwrap();
        for i in 1..10 {
            for j in (i + 1)..10 {
                assert_eq!(s.adjacency().get(i, j), 1.0);
            }
        }
        // 9 leaves, all pairs connected: 36 undirected edges.
        assert_eq!(s.n_edges(), 36);
    }

    #[test]
    fn threshold_prunes_weak_pairs() {
        let g = figure1_graph();
        let s = Bibliometric {
            options: BibliometricOptions {
                add_identity: false,
                threshold: 3.0,
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        // (4,5) has weight 8, survives; weaker pairs pruned.
        assert_eq!(s.adjacency().get(4, 5), 8.0);
        // (1,2) share out-links {4,5} → weight 2 < 3, pruned.
        assert_eq!(s.adjacency().get(1, 2), 0.0);
        assert_eq!(s.threshold(), 3.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = figure1_graph();
        let serial = Bibliometric::default().symmetrize(&g).unwrap();
        let parallel = Bibliometric {
            options: BibliometricOptions {
                n_threads: 0,
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        assert_eq!(serial.adjacency(), parallel.adjacency());
    }

    #[test]
    fn generous_budget_is_exact_and_not_degraded() {
        let g = figure1_graph();
        let exact = Bibliometric::default().symmetrize(&g).unwrap();
        let budgeted = Bibliometric {
            options: BibliometricOptions {
                nnz_budget: Some(1_000_000),
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        assert!(!budgeted.degraded());
        assert_eq!(exact.adjacency(), budgeted.adjacency());
    }

    #[test]
    fn tight_budget_degrades_on_hub_graph() {
        // Star: co-citation densifies into all leaf pairs; a tiny budget
        // must force the thresholded fallback rather than abort.
        let g = star_graph(40);
        let s = Bibliometric {
            options: BibliometricOptions {
                add_identity: false,
                nnz_budget: Some(20),
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        assert!(s.degraded(), "tiny budget on a hub graph must degrade");
        assert!(s.adjacency().is_symmetric(1e-12));
        // Deterministic: rerunning yields the identical graph.
        let again = Bibliometric {
            options: BibliometricOptions {
                add_identity: false,
                nnz_budget: Some(20),
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        assert_eq!(s.adjacency(), again.adjacency());
    }

    #[test]
    fn diagonal_is_dropped() {
        let g = figure1_graph();
        let s = Bibliometric::default().symmetrize(&g).unwrap();
        for i in 0..g.n_nodes() {
            assert_eq!(s.adjacency().get(i, i), 0.0);
        }
    }
}

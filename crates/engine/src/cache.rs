//! In-memory, content-addressed artifact cache with in-flight
//! deduplication.
//!
//! The cache maps a stable 64-bit key (see [`crate::fingerprint`]) to a
//! shared artifact. Its job in the pipeline engine is to make parameter
//! sweeps cheap: a 4-method × N-clusterer sweep issues 4N symmetrize
//! stages, but only 4 distinct keys, so 4 computations run and the rest
//! are hits.
//!
//! Because stages execute on a worker pool, two workers can ask for the
//! same key *concurrently* before either has produced the artifact. A
//! plain map would compute twice. [`ArtifactCache::get_or_compute`]
//! instead records an in-flight marker under the key; later requesters
//! block on a condvar until the first computation lands, then take the
//! shared result (counted as a hit — no duplicate work happened).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Slot states for one key.
enum Slot<T> {
    /// Some worker is computing this artifact right now.
    InFlight,
    /// The artifact is available.
    Ready(Arc<T>),
}

/// Hit/miss counters, snapshot via [`ArtifactCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a ready or in-flight artifact.
    pub hits: usize,
    /// Requests that ran the compute closure.
    pub misses: usize,
    /// The subset of `hits` that parked behind another worker's in-flight
    /// computation of the same key (concurrent duplicate work avoided).
    pub dedups: usize,
}

/// Thread-safe artifact cache keyed by `u64` content hashes.
pub struct ArtifactCache<T> {
    slots: Mutex<HashMap<u64, Slot<T>>>,
    ready: Condvar,
    hits: AtomicUsize,
    misses: AtomicUsize,
    dedups: AtomicUsize,
}

/// Clears an owned in-flight marker if the computing thread unwinds.
///
/// Without this, a panicking compute closure would leave its `InFlight`
/// slot in place forever and every later requester of the key would park
/// on the condvar with nothing left to wake it — a panic would escalate
/// into a deadlock of unrelated workers.
struct InFlightGuard<'a, T> {
    cache: &'a ArtifactCache<T>,
    key: u64,
    armed: bool,
}

impl<T> Drop for InFlightGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            // Runs during unwinding: never double-panic on a poisoned lock.
            let mut slots = self
                .cache
                .slots
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            slots.remove(&self.key);
            self.cache.ready.notify_all();
        }
    }
}

impl<T> Default for ArtifactCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ArtifactCache<T> {
    /// Empty cache.
    pub fn new() -> Self {
        ArtifactCache {
            slots: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            dedups: AtomicUsize::new(0),
        }
    }

    /// Returns the artifact for `key`, computing it with `compute` on a
    /// miss. The boolean is `true` when the value came from the cache
    /// (including waiting out another worker's in-flight computation).
    ///
    /// If `compute` fails, the error is returned to the caller that ran
    /// it and the slot is cleared, so a *later* request will retry rather
    /// than caching the failure. Concurrent waiters of a failed
    /// computation retry the compute themselves.
    pub fn get_or_compute<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, bool), E> {
        let mut waited = false;
        loop {
            let mut slots = self.slots.lock().expect("cache lock");
            match slots.get(&key) {
                Some(Slot::Ready(v)) => {
                    let v = Arc::clone(v);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        self.dedups.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok((v, true));
                }
                Some(Slot::InFlight) => {
                    waited = true;
                    // Another worker is on it; park until the slot changes,
                    // then re-examine (it may be Ready, or cleared by a
                    // failed computation).
                    let _guard = self.ready.wait(slots).expect("cache lock");
                    continue;
                }
                None => {
                    slots.insert(key, Slot::InFlight);
                    drop(slots);
                    break;
                }
            }
        }
        // We own the in-flight marker: compute outside the lock, with a
        // guard that clears the marker should `compute` panic.
        let mut guard = InFlightGuard {
            cache: self,
            key,
            armed: true,
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = compute();
        let mut slots = self.slots.lock().expect("cache lock");
        guard.armed = false; // both paths below settle the slot themselves
        match outcome {
            Ok(v) => {
                let v = Arc::new(v);
                slots.insert(key, Slot::Ready(Arc::clone(&v)));
                self.ready.notify_all();
                Ok((v, false))
            }
            Err(e) => {
                slots.remove(&key);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Fetches without computing.
    pub fn get(&self, key: u64) -> Option<Arc<T>> {
        let slots = self.slots.lock().expect("cache lock");
        match slots.get(&key) {
            Some(Slot::Ready(v)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(v))
            }
            _ => None,
        }
    }

    /// Number of ready artifacts.
    pub fn len(&self) -> usize {
        let slots = self.slots.lock().expect("cache lock");
        slots
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether no artifact is ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            dedups: self.dedups.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        let (v, hit) = cache.get_or_compute(1, || Ok::<_, ()>(7)).unwrap();
        assert_eq!((*v, hit), (7, false));
        let (v, hit) = cache
            .get_or_compute(1, || -> Result<u32, ()> { panic!("must not recompute") })
            .unwrap();
        assert_eq!((*v, hit), (7, true));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                dedups: 0,
            }
        );
    }

    #[test]
    fn distinct_keys_compute_independently() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        cache.get_or_compute(1, || Ok::<_, ()>(1)).unwrap();
        cache.get_or_compute(2, || Ok::<_, ()>(2)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn failed_compute_is_not_cached() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        let err = cache
            .get_or_compute(9, || Err::<u32, _>("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        let (v, hit) = cache.get_or_compute(9, || Ok::<_, &str>(3)).unwrap();
        assert_eq!((*v, hit), (3, false));
    }

    #[test]
    fn panicking_compute_clears_slot_for_later_requests() {
        let cache: Arc<ArtifactCache<u32>> = Arc::new(ArtifactCache::new());
        let c = Arc::clone(&cache);
        let outcome = std::thread::spawn(move || {
            c.get_or_compute(7, || -> Result<u32, ()> { panic!("kernel bug") })
        })
        .join();
        assert!(outcome.is_err(), "panic should propagate to the computer");
        // The slot must be clear: a later request recomputes instead of
        // parking forever behind a dead in-flight marker.
        let (v, hit) = cache.get_or_compute(7, || Ok::<_, ()>(11)).unwrap();
        assert_eq!((*v, hit), (11, false));
    }

    #[test]
    fn waiter_is_released_when_computer_panics() {
        let cache: Arc<ArtifactCache<u32>> = Arc::new(ArtifactCache::new());
        let c1 = Arc::clone(&cache);
        let computer = std::thread::spawn(move || {
            let _ = c1.get_or_compute(3, || -> Result<u32, ()> {
                std::thread::sleep(std::time::Duration::from_millis(40));
                panic!("boom mid-flight")
            });
        });
        // Give the computer time to claim the slot, then pile on a waiter.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let c2 = Arc::clone(&cache);
        let waiter = std::thread::spawn(move || c2.get_or_compute(3, || Ok::<_, ()>(5)).unwrap());
        let (v, _) = waiter.join().expect("waiter must not deadlock or die");
        assert_eq!(*v, 5);
        assert!(computer.join().is_err());
    }

    #[test]
    fn concurrent_requests_compute_once() {
        use std::sync::atomic::AtomicUsize;
        let cache: Arc<ArtifactCache<u64>> = Arc::new(ArtifactCache::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let (v, _) = cache
                    .get_or_compute(5, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters actually park.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok::<_, ()>(99u64)
                    })
                    .unwrap();
                *v
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1, "duplicate compute");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
        // Every hit parked behind the single in-flight computation.
        assert_eq!(stats.dedups, 7);
    }

    #[test]
    fn sequential_hits_are_not_dedups() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        cache.get_or_compute(1, || Ok::<_, ()>(1)).unwrap();
        for _ in 0..3 {
            cache.get_or_compute(1, || Ok::<_, ()>(1)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.dedups, 0, "no concurrent in-flight wait happened");
    }
}

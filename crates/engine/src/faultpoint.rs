//! Deterministic fault injection for exercising the engine's recovery
//! paths (compiled only under the `fault-injection` cargo feature).
//!
//! The executor names a fault point at the top of every stage attempt
//! (`"{stage}:{label}"`, e.g. `"symmetrize:Bibliometric"`). Tests arm a
//! point with a [`FaultAction`] and run a normal sweep; the armed point
//! then misbehaves in a precisely-controlled way:
//!
//! * [`FaultAction::Panic`] — the stage panics, exercising panic
//!   isolation (`catch_unwind` + the cache's in-flight guard).
//! * [`FaultAction::Transient`] — the stage fails with a retryable error
//!   a fixed number of times, exercising the backoff/retry loop.
//! * [`FaultAction::Oom`] — the stage behaves as if the memory-budget
//!   estimator reported an over-budget product (effective budget forced
//!   to one stored entry), exercising degraded-mode SpGEMM.
//!
//! The registry is a process-global map, so tests that arm points must
//! serialize against each other (the integration suite shares one mutex)
//! and [`reset`] between scenarios.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// What an armed fault point does when fired.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Panic with a recognizable message.
    Panic,
    /// Fail with a transient (retryable) error this many times, then
    /// behave normally.
    Transient {
        /// Remaining failures before the point goes quiet.
        failures: usize,
    },
    /// Simulate memory exhaustion: the executor clamps the stage's
    /// effective SpGEMM budget to a single stored entry.
    Oom,
}

fn registry() -> &'static Mutex<HashMap<String, FaultAction>> {
    static REG: OnceLock<Mutex<HashMap<String, FaultAction>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<String, FaultAction>> {
    // Robust against a panic injected while the lock was held elsewhere.
    registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `name` with `action` (replacing any previous arming).
pub fn arm(name: &str, action: FaultAction) {
    lock().insert(name.to_string(), action);
}

/// Disarms `name`.
pub fn disarm(name: &str) {
    lock().remove(name);
}

/// Disarms every fault point.
pub fn reset() {
    lock().clear();
}

/// Fires the named fault point: panics under [`FaultAction::Panic`],
/// returns a transient error (and decrements the remaining-failure count)
/// under [`FaultAction::Transient`], and is a no-op otherwise.
pub fn fire(name: &str) -> Result<(), String> {
    let mut reg = lock();
    match reg.get_mut(name) {
        Some(FaultAction::Panic) => {
            drop(reg); // don't poison the registry for later scenarios
            panic!("injected panic at fault point {name}");
        }
        Some(FaultAction::Transient { failures }) if *failures > 0 => {
            *failures -= 1;
            Err(format!("transient: injected fault at {name}"))
        }
        _ => Ok(()),
    }
}

/// Whether `name` is armed with [`FaultAction::Oom`].
pub fn oom_armed(name: &str) -> bool {
    matches!(lock().get(name), Some(FaultAction::Oom))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_budget_decrements_then_goes_quiet() {
        let name = "unit:transient-point";
        arm(name, FaultAction::Transient { failures: 2 });
        assert!(fire(name).is_err());
        assert!(fire(name).is_err());
        assert!(fire(name).is_ok(), "budget exhausted, point goes quiet");
        assert!(!oom_armed(name));
        disarm(name);
        assert!(fire(name).is_ok());
    }

    #[test]
    fn oom_arming_is_observable_and_fire_is_noop() {
        let name = "unit:oom-point";
        arm(name, FaultAction::Oom);
        assert!(oom_armed(name));
        assert!(fire(name).is_ok());
        disarm(name);
        assert!(!oom_armed(name));
    }
}

//! Content-addressed cache keys for pipeline artifacts.
//!
//! A key is a stable 64-bit FNV-1a hash over (graph fingerprint, stage
//! name, stage parameters). Stability matters twice over: within a process
//! run, the same directed graph and the same parameters must map to the
//! same key so that sweeps over clusterers, thresholds, or α/β reuse each
//! symmetrization instead of recomputing it; and *across* processes and
//! machines, because `symclust-store` persists these keys as on-disk
//! content addresses (DESIGN.md §14) that a restarted daemon must re-derive
//! bit-for-bit. The hash therefore must be platform-independent (it is:
//! FNV-1a over explicitly little-endian encodings), but only
//! collision-resistant enough for deduplication — a collision degrades to
//! serving the colliding artifact, and 64 bits over at most thousands of
//! artifacts keeps that probability negligible.

use symclust_graph::DiGraph;

/// Incremental 64-bit FNV-1a hasher.
///
/// FNV-1a is not cryptographic; it is chosen for being dependency-free,
/// fully deterministic across platforms, and fast on the short streams we
/// hash (CSR arrays + a handful of parameters).
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs an `f64` by bit pattern (so `-0.0` and `0.0` differ; the
    /// engine never uses NaN parameters).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorbs a string, length-prefixed so concatenations can't collide.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write_bytes(s.as_bytes())
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprints a directed graph by its exact CSR content (dimensions,
/// structure, and edge weights). Two `DiGraph`s get the same fingerprint
/// iff their adjacency matrices are identical.
pub fn graph_fingerprint(g: &DiGraph) -> u64 {
    matrix_fingerprint(g.adjacency())
}

/// Fingerprints a sparse matrix by its exact CSR content. Used to key
/// stages whose input is an intermediate artifact (e.g. pruning a
/// symmetrized graph) rather than the original directed graph.
pub fn matrix_fingerprint(a: &symclust_sparse::CsrMatrix) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(a.n_rows() as u64).write_u64(a.nnz() as u64);
    for &p in a.indptr() {
        h.write_u64(p as u64);
    }
    for &i in a.indices() {
        h.write_u64(i as u64);
    }
    for &v in a.values() {
        h.write_f64(v);
    }
    h.finish()
}

/// Builds the cache key for a stage applied to a fingerprinted input:
/// `hash(input_fingerprint, stage, params...)`. `params` must be a stable
/// encoding of everything that affects the stage's output.
pub fn stage_key(input_fingerprint: u64, stage: &str, params: &[f64]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(input_fingerprint).write_str(stage);
    h.write_u64(params.len() as u64);
    for &p in params {
        h.write_f64(p);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::figure1_graph;

    #[test]
    fn fnv_matches_reference_vector() {
        // Standard FNV-1a test vector: "a" -> 0xaf63dc4c8601ec8c.
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn graph_fingerprint_is_stable_and_content_sensitive() {
        let g1 = figure1_graph();
        let g2 = figure1_graph();
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        let other = symclust_graph::DiGraph::from_edges(3, &[(0, 1)]).unwrap();
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&other));
    }

    #[test]
    fn stage_key_separates_stage_and_params() {
        let fp = 42u64;
        let a = stage_key(fp, "symmetrize/dd", &[0.5, 0.5, 0.0]);
        let b = stage_key(fp, "symmetrize/dd", &[0.5, 0.5, 1.0]);
        let c = stage_key(fp, "symmetrize/bib", &[0.5, 0.5, 0.0]);
        let d = stage_key(43, "symmetrize/dd", &[0.5, 0.5, 0.0]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, stage_key(fp, "symmetrize/dd", &[0.5, 0.5, 0.0]));
    }

    #[test]
    fn string_hashing_is_length_prefixed() {
        let mut ab = Fnv64::new();
        ab.write_str("ab").write_str("c");
        let mut a_bc = Fnv64::new();
        a_bc.write_str("a").write_str("bc");
        assert_ne!(ab.finish(), a_bc.finish());
    }
}

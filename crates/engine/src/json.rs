//! Minimal JSON writer and flat-object parser for event streams, result
//! records, and the run journal.
//!
//! The workspace has no serde (offline build), and the only JSON it
//! handles is flat objects of strings/numbers/bools/null — so a small
//! escaping writer plus a matching single-level parser is all that's
//! needed. Output is one object per [`JsonObject::finish`], suitable for
//! JSONL streams; [`parse_object`] reads one such line back.

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a number as JSON: finite floats as-is (integral values without
/// a trailing `.0` is not required by JSON, so `1234` and `0.5` both
/// appear naturally), non-finite values as `null` (JSON has no NaN/inf).
pub fn number(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Incremental writer for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
    }

    /// Adds a numeric field.
    pub fn number(&mut self, key: &str, value: f64) {
        self.key(key);
        self.buf.push_str(&number(value));
    }

    /// Adds a boolean field.
    pub fn boolean(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Adds an explicit `null` field.
    pub fn null(&mut self, key: &str) {
        self.key(key);
        self.buf.push_str("null");
    }

    /// Adds a pre-serialized JSON value verbatim (e.g. a nested object).
    pub fn raw(&mut self, key: &str, json: &str) {
        self.key(key);
        self.buf.push_str(json);
    }

    /// Closes the object and returns it as a single line.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// A parsed flat JSON value (no arrays/nesting — the journal and event
/// schemas are deliberately flat).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string (unescaped).
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (as produced by [`JsonObject`]) into a
/// key → value map. Rejects nesting, arrays, and trailing garbage — this
/// is a schema-matched reader for our own output, not a general parser.
pub fn parse_object(line: &str) -> Result<std::collections::HashMap<String, JsonValue>, String> {
    let mut out = std::collections::HashMap::new();
    let s: Vec<char> = line.trim().chars().collect();
    let mut i = 0usize;
    let n = s.len();
    let skip_ws = |i: &mut usize| {
        while *i < n && s[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };

    fn parse_string(s: &[char], i: &mut usize) -> Result<String, String> {
        if s.get(*i) != Some(&'"') {
            return Err(format!("expected '\"' at {}", *i));
        }
        *i += 1;
        let mut out = String::new();
        while let Some(&c) = s.get(*i) {
            *i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = s.get(*i).copied().ok_or("truncated escape")?;
                    *i += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let hex: String =
                                s.get(*i..*i + 4).ok_or("truncated \\u")?.iter().collect();
                            *i += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|e| format!("bad \\u escape {hex}: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{other}'")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    skip_ws(&mut i);
    if s.get(i) != Some(&'{') {
        return Err("expected '{'".into());
    }
    i += 1;
    skip_ws(&mut i);
    if s.get(i) == Some(&'}') {
        i += 1;
    } else {
        loop {
            skip_ws(&mut i);
            let key = parse_string(&s, &mut i)?;
            skip_ws(&mut i);
            if s.get(i) != Some(&':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            i += 1;
            skip_ws(&mut i);
            let value = match s.get(i) {
                Some(&'"') => JsonValue::Str(parse_string(&s, &mut i)?),
                Some(&'t')
                    if s.get(i..i + 4).map(|c| c.iter().collect::<String>())
                        == Some("true".into()) =>
                {
                    i += 4;
                    JsonValue::Bool(true)
                }
                Some(&'f')
                    if s.get(i..i + 5).map(|c| c.iter().collect::<String>())
                        == Some("false".into()) =>
                {
                    i += 5;
                    JsonValue::Bool(false)
                }
                Some(&'n')
                    if s.get(i..i + 4).map(|c| c.iter().collect::<String>())
                        == Some("null".into()) =>
                {
                    i += 4;
                    JsonValue::Null
                }
                Some(_) => {
                    let start = i;
                    while i < n && !matches!(s[i], ',' | '}') && !s[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let text: String = s[start..i].iter().collect();
                    let num: f64 = text
                        .parse()
                        .map_err(|e| format!("bad value {text:?} for key {key:?}: {e}"))?;
                    JsonValue::Num(num)
                }
                None => return Err("truncated object".into()),
            };
            out.insert(key, value);
            skip_ws(&mut i);
            match s.get(i) {
                Some(&',') => {
                    i += 1;
                    continue;
                }
                Some(&'}') => {
                    i += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at {i}")),
            }
        }
    }
    skip_ws(&mut i);
    if i != n {
        return Err(format!("trailing garbage at {i}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builds_valid_json() {
        let mut obj = JsonObject::new();
        obj.string("name", "A+A'");
        obj.number("edges", 42.0);
        obj.boolean("hit", true);
        obj.null("f");
        assert_eq!(
            obj.finish(),
            r#"{"name":"A+A'","edges":42,"hit":true,"f":null}"#
        );
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let mut obj = JsonObject::new();
        obj.string("name", "A+A' \"quoted\"\n");
        obj.number("edges", 42.0);
        obj.number("f", 0.25);
        obj.boolean("hit", true);
        obj.null("missing");
        let line = obj.finish();
        let map = parse_object(&line).unwrap();
        assert_eq!(map["name"].as_str(), Some("A+A' \"quoted\"\n"));
        assert_eq!(map["edges"].as_f64(), Some(42.0));
        assert_eq!(map["f"].as_f64(), Some(0.25));
        assert_eq!(map["hit"].as_bool(), Some(true));
        assert_eq!(map["missing"], JsonValue::Null);
    }

    #[test]
    fn parse_handles_empty_and_negative_numbers() {
        assert!(parse_object("{}").unwrap().is_empty());
        let map = parse_object(r#"{"x":-1.5e3,"y":false}"#).unwrap();
        assert_eq!(map["x"].as_f64(), Some(-1500.0));
        assert_eq!(map["y"].as_bool(), Some(false));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":}"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_object(r#"{"a":"unterminated}"#).is_err());
        assert!(parse_object(r#"{"a":zzz}"#).is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        let map = parse_object("{\"s\":\"\\u0041\\u00e9\"}").unwrap();
        assert_eq!(map["s"].as_str(), Some("A\u{e9}"));
    }
}

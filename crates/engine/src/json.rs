//! Minimal JSON writer for event streams and result records.
//!
//! The workspace has no serde (offline build), and the only JSON it emits
//! is flat objects of strings/numbers/bools — so a small escaping writer
//! is all that's needed. Output is one object per [`JsonObject::finish`],
//! suitable for JSONL streams.

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a number as JSON: finite floats as-is (integral values without
/// a trailing `.0` is not required by JSON, so `1234` and `0.5` both
/// appear naturally), non-finite values as `null` (JSON has no NaN/inf).
pub fn number(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Incremental writer for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
    }

    /// Adds a numeric field.
    pub fn number(&mut self, key: &str, value: f64) {
        self.key(key);
        self.buf.push_str(&number(value));
    }

    /// Adds a boolean field.
    pub fn boolean(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Adds an explicit `null` field.
    pub fn null(&mut self, key: &str) {
        self.key(key);
        self.buf.push_str("null");
    }

    /// Adds a pre-serialized JSON value verbatim (e.g. a nested object).
    pub fn raw(&mut self, key: &str, json: &str) {
        self.key(key);
        self.buf.push_str(json);
    }

    /// Closes the object and returns it as a single line.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builds_valid_json() {
        let mut obj = JsonObject::new();
        obj.string("name", "A+A'");
        obj.number("edges", 42.0);
        obj.boolean("hit", true);
        obj.null("f");
        assert_eq!(
            obj.finish(),
            r#"{"name":"A+A'","edges":42,"hit":true,"f":null}"#
        );
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}

//! Durable JSONL run journal for crash-safe resume.
//!
//! Every completed `Evaluate` chain appends one line to the journal:
//! the chain's content-addressed key (graph fingerprint composed with
//! every stage's parameters, see [`crate::exec`]) plus the finished
//! [`RunRecord`]. A later run pointed at the same journal pre-settles
//! every chain whose key it finds — after a crash or cancellation
//! mid-sweep, `--resume` re-executes zero completed work.
//!
//! The format is append-only, one flat JSON object per line, flushed and
//! fsynced per record. A truncated trailing line (the crash case) or any
//! hand-corrupted line is skipped on open rather than failing the run:
//! losing one record costs one recomputation, never the sweep.

use crate::json::{parse_object, JsonObject, JsonValue};
use crate::report::RunRecord;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// A run journal: the set of completed chains read at open time, plus an
/// append handle for chains this run completes.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    completed: HashMap<u64, RunRecord>,
}

impl RunJournal {
    /// Opens (or starts) a journal at `path`. A missing file is an empty
    /// journal; unparsable lines are skipped.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut completed = HashMap::new();
        match std::fs::File::open(&path) {
            Ok(f) => {
                for line in BufReader::new(f).lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    if let Some((key, record)) = parse_entry(&line) {
                        completed.insert(key, record);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(RunJournal { path, completed })
    }

    /// Whether a chain with this key already completed in an earlier run.
    pub fn contains(&self, key: u64) -> bool {
        self.completed.contains_key(&key)
    }

    /// The completed record for a chain key, if present.
    pub fn get(&self, key: u64) -> Option<&RunRecord> {
        self.completed.get(&key)
    }

    /// Number of completed chains known to the journal.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no chain has completed yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Appends one completed chain, durably (flush + fsync before
    /// returning). Idempotent per key: re-appending an existing key is a
    /// no-op.
    pub fn append(&mut self, key: u64, record: &RunRecord) -> std::io::Result<()> {
        if self.completed.contains_key(&key) {
            return Ok(());
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut line = entry_to_json(key, record);
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.flush()?;
        file.sync_data()?;
        self.completed.insert(key, record.clone());
        Ok(())
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn entry_to_json(key: u64, r: &RunRecord) -> String {
    let mut obj = JsonObject::new();
    obj.string("chain_key", &format!("{key:016x}"));
    // Reuse the record's own (flat) serialization by splicing its fields.
    let record_json = r.to_json();
    let inner = record_json
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or("");
    let head = obj.finish();
    let head = head.strip_suffix('}').unwrap_or(&head);
    format!("{head},{inner}}}")
}

fn parse_entry(line: &str) -> Option<(u64, RunRecord)> {
    let map = parse_object(line).ok()?;
    let key = u64::from_str_radix(map.get("chain_key")?.as_str()?, 16).ok()?;
    let record = RunRecord {
        dataset: map.get("dataset")?.as_str()?.to_string(),
        symmetrization: map.get("symmetrization")?.as_str()?.to_string(),
        algorithm: map.get("algorithm")?.as_str()?.to_string(),
        n_clusters: map.get("n_clusters")?.as_f64()? as usize,
        f_score: match map.get("f_score")? {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Null => None,
            _ => return None,
        },
        cluster_secs: map.get("cluster_secs")?.as_f64()?,
        symmetrize_secs: map.get("symmetrize_secs")?.as_f64()?,
        sym_edges: map.get("sym_edges")?.as_f64()? as usize,
        degraded: map.get("degraded")?.as_bool()?,
        converged: map.get("converged")?.as_bool()?,
    };
    Some((key, record))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(dataset: &str) -> RunRecord {
        RunRecord {
            dataset: dataset.into(),
            symmetrization: "A+A'".into(),
            algorithm: "Metis".into(),
            n_clusters: 4,
            f_score: Some(61.5),
            cluster_secs: 0.12,
            symmetrize_secs: 0.03,
            sym_edges: 220,
            degraded: false,
            converged: true,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("symclust_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    #[test]
    fn roundtrips_appended_records() {
        let path = temp_path("roundtrip.jsonl");
        let mut j = RunJournal::open(&path).unwrap();
        assert!(j.is_empty());
        j.append(0xabc, &record("d1")).unwrap();
        j.append(0xdef, &record("d2")).unwrap();
        assert_eq!(j.len(), 2);

        let j2 = RunJournal::open(&path).unwrap();
        assert_eq!(j2.len(), 2);
        assert!(j2.contains(0xabc));
        let r = j2.get(0xdef).unwrap();
        assert_eq!(r.dataset, "d2");
        assert_eq!(r.f_score, Some(61.5));
        assert!(r.converged);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_is_idempotent_per_key() {
        let path = temp_path("idempotent.jsonl");
        let mut j = RunJournal::open(&path).unwrap();
        j.append(7, &record("d")).unwrap();
        j.append(7, &record("d")).unwrap();
        assert_eq!(j.len(), 1);
        let lines = std::fs::read_to_string(&path).unwrap();
        assert_eq!(lines.lines().count(), 1, "duplicate key rewrote the file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_and_truncated_lines_are_skipped() {
        let path = temp_path("corrupt.jsonl");
        let mut j = RunJournal::open(&path).unwrap();
        j.append(1, &record("good")).unwrap();
        // Simulate a crash mid-append plus outright garbage.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json at all\n");
        text.push_str("{\"chain_key\":\"0000000000000002\",\"dataset\":\"trunc");
        std::fs::write(&path, text).unwrap();

        let j2 = RunJournal::open(&path).unwrap();
        assert_eq!(j2.len(), 1, "only the intact line survives");
        assert!(j2.contains(1));
        assert!(!j2.contains(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let path = temp_path("never_created.jsonl");
        std::fs::remove_file(&path).ok();
        let j = RunJournal::open(&path).unwrap();
        assert!(j.is_empty());
    }
}

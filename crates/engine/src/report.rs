//! Run records: the measured output of one (dataset, symmetrization,
//! clusterer) pipeline, plus table/JSONL rendering.

use crate::json::JsonObject;
use crate::spec::{Clusterer, SymMethod};
use std::time::Instant;
use symclust_core::SymmetrizedGraph;
use symclust_eval::avg_f_score;
use symclust_graph::GroundTruth;

/// One measured clustering run; serialized as JSON lines for downstream
/// plotting and recorded in EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Dataset name.
    pub dataset: String,
    /// Symmetrization method name.
    pub symmetrization: String,
    /// Clustering algorithm name.
    pub algorithm: String,
    /// Number of clusters produced.
    pub n_clusters: usize,
    /// Micro-averaged F-score (percentage), when ground truth exists.
    pub f_score: Option<f64>,
    /// Clustering wall time in seconds (excludes symmetrization).
    pub cluster_secs: f64,
    /// Symmetrization wall time in seconds.
    pub symmetrize_secs: f64,
    /// Undirected edges in the symmetrized graph.
    pub sym_edges: usize,
    /// Whether the symmetrization ran in degraded (budget-limited) mode:
    /// the SpGEMM output estimate exceeded the memory budget and the
    /// product was adaptively thresholded instead (see §10 of DESIGN.md).
    pub degraded: bool,
    /// Whether the clusterer reported convergence. `false` means the flow
    /// iteration exhausted its budget and the clustering is best-effort.
    pub converged: bool,
}

impl RunRecord {
    /// Short health annotation for table rendering: `degraded` and/or
    /// `no-conv`, or `-` when the run was exact and converged.
    pub fn notes(&self) -> String {
        match (self.degraded, self.converged) {
            (false, true) => "-".to_string(),
            (true, true) => "degraded".to_string(),
            (false, false) => "no-conv".to_string(),
            (true, false) => "degraded,no-conv".to_string(),
        }
    }

    /// One JSON object on a single line (JSONL-ready).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.string("dataset", &self.dataset);
        obj.string("symmetrization", &self.symmetrization);
        obj.string("algorithm", &self.algorithm);
        obj.number("n_clusters", self.n_clusters as f64);
        match self.f_score {
            Some(f) => obj.number("f_score", f),
            None => obj.null("f_score"),
        }
        obj.number("cluster_secs", self.cluster_secs);
        obj.number("symmetrize_secs", self.symmetrize_secs);
        obj.number("sym_edges", self.sym_edges as f64);
        obj.boolean("degraded", self.degraded);
        obj.boolean("converged", self.converged);
        obj.finish()
    }
}

/// Runs `clusterer` on `sym` serially and packages the measurement. This
/// is the reference path the engine's parallel executor is checked
/// against; it is also used directly by one-off experiments that don't
/// need a sweep.
pub fn measure(
    dataset: &str,
    sym_method: &SymMethod,
    sym: &SymmetrizedGraph,
    clusterer: Clusterer,
    truth: Option<&GroundTruth>,
) -> RunRecord {
    let start = Instant::now();
    let clustering = clusterer.run(sym);
    let cluster_secs = start.elapsed().as_secs_f64();
    let f_score = truth.map(|t| avg_f_score(clustering.assignments(), t).avg_f);
    RunRecord {
        dataset: dataset.to_string(),
        symmetrization: sym_method.name(),
        algorithm: clusterer.name().to_string(),
        n_clusters: clustering.n_clusters(),
        f_score,
        cluster_secs,
        symmetrize_secs: sym.elapsed().as_secs_f64(),
        sym_edges: sym.n_edges(),
        degraded: sym.degraded(),
        converged: clustering.converged(),
    }
}

/// Prints records as an aligned table with the given title.
pub fn print_records(title: &str, records: &[RunRecord]) {
    println!("\n== {title} ==");
    println!(
        "{:<18} {:<18} {:<9} {:>6} {:>8} {:>10} {:>10} {:<16}",
        "dataset", "symmetrization", "algo", "k", "F", "time(s)", "edges", "notes"
    );
    for r in records {
        println!(
            "{:<18} {:<18} {:<9} {:>6} {:>8} {:>10.3} {:>10} {:<16}",
            r.dataset,
            r.symmetrization,
            r.algorithm,
            r.n_clusters,
            r.f_score.map_or("-".to_string(), |f| format!("{f:.2}")),
            r.cluster_secs,
            r.sym_edges,
            r.notes(),
        );
    }
}

/// Appends records as JSON lines to `bench_results/<name>.jsonl`.
pub fn save_records(name: &str, records: &[RunRecord]) {
    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.jsonl"));
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_has_every_field_and_null_f() {
        let r = RunRecord {
            dataset: "d".into(),
            symmetrization: "A+A'".into(),
            algorithm: "Metis".into(),
            n_clusters: 7,
            f_score: None,
            cluster_secs: 0.5,
            symmetrize_secs: 0.25,
            sym_edges: 100,
            degraded: true,
            converged: false,
        };
        let j = r.to_json();
        assert!(j.contains("\"f_score\":null"), "{j}");
        assert!(j.contains("\"degraded\":true"), "{j}");
        assert!(j.contains("\"converged\":false"), "{j}");
        assert!(j.contains("\"symmetrization\":\"A+A'\""), "{j}");
        assert!(j.contains("\"n_clusters\":7"), "{j}");
        assert!(!j.contains('\n'));
        assert_eq!(r.notes(), "degraded,no-conv");
        let healthy = RunRecord {
            degraded: false,
            converged: true,
            ..r.clone()
        };
        assert_eq!(healthy.notes(), "-");
    }
}

//! The pipeline executor: a crossbeam worker pool driving the stage DAG
//! with bounded-channel backpressure, a shared artifact cache, cooperative
//! cancellation with per-stage deadlines, and a structured event stream.
//!
//! Execution model:
//!
//! * The calling thread acts as the **dispatcher**. It tracks per-node
//!   in-degrees and pushes ready nodes into a *bounded* task channel
//!   (capacity = worker count), so dispatch stalls when every worker is
//!   busy rather than queueing unboundedly.
//! * `threads` **workers** loop over the task channel, execute one stage
//!   at a time, and report on an *unbounded* done channel (workers never
//!   block on reporting, so the pool cannot deadlock against a stalled
//!   dispatcher).
//! * The dispatcher receives done messages with a short timeout so it can
//!   also poll the run-level [`CancelToken`]; on cancellation it stops
//!   dispatching, cancels all in-flight stage tokens, and drains
//!   outstanding work. Records of already-completed chains are kept —
//!   cancellation surfaces *partial results*, it does not discard them.
//!
//! Fault tolerance (DESIGN.md §10):
//!
//! * Every stage attempt runs under `catch_unwind`: a panicking kernel
//!   becomes a [`Event::StageFailed`] with `panic: true` and only its own
//!   chain is skipped — sibling chains keep running.
//! * Failures classified as *transient* (error text contains
//!   `"transient"`) are retried under [`RetryPolicy`] with exponential
//!   backoff and deterministic jitter, emitting [`Event::StageRetrying`].
//! * An SpGEMM memory budget ([`EngineOptions::memory_budget`]) makes the
//!   similarity symmetrizations degrade to a thresholded product instead
//!   of exhausting memory; degraded runs carry `degraded: true` in their
//!   records.
//! * A run journal ([`EngineOptions::journal`]) records every completed
//!   evaluate chain durably; re-running with the same journal pre-settles
//!   those chains ([`Event::StageResumed`]) so crashed or cancelled sweeps
//!   resume without redoing finished work.

use crate::cache::{ArtifactCache, CacheStats};
use crate::event::{Event, StageKind};
use crate::fingerprint::{graph_fingerprint, matrix_fingerprint, stage_key, Fnv64};
use crate::journal::RunJournal;
use crate::plan::{PipelineSpec, Plan, StageNode};
use crate::report::RunRecord;
use crossbeam::channel::{bounded, unbounded, RecvTimeoutError};
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use symclust_cluster::Clustering;
use symclust_core::{SymmetrizeError, SymmetrizedGraph};
use symclust_eval::avg_f_score;
use symclust_graph::{DiGraph, GroundTruth, UnGraph};
use symclust_obs::{MetricsRegistry, MetricsSnapshot};
use symclust_sparse::{ops, CancelToken};

/// Stable metric names the executor records (DESIGN.md §11). Kernel-level
/// names (`spgemm.*`, `mcl.*`) live next to their kernels; these cover the
/// engine and the prune stage, which the executor runs itself.
pub mod metric_names {
    /// Counter: cache requests served from a ready artifact (per sweep).
    pub const CACHE_HITS: &str = "engine.cache_hits";
    /// Counter: cache requests that ran the compute closure (per sweep).
    pub const CACHE_MISSES: &str = "engine.cache_misses";
    /// Counter: hits that parked behind another worker's in-flight
    /// computation of the same key (duplicate work avoided).
    pub const INFLIGHT_DEDUPS: &str = "engine.inflight_dedups";
    /// Counter: stage attempts re-run after a transient failure.
    pub const RETRIES: &str = "engine.retries";
    /// Gauge: high-water mark of the dispatcher's ready queue.
    pub const QUEUE_DEPTH_HWM: &str = "engine.queue_depth_hwm";
    /// Counter: entries entering prune stages.
    pub const PRUNE_EDGES_IN: &str = "prune.edges_in";
    /// Counter: entries surviving prune stages.
    pub const PRUNE_EDGES_OUT: &str = "prune.edges_out";
    /// Gauge: survival ratio (`edges_out / edges_in`) of the most recent
    /// prune computation.
    pub const PRUNE_SURVIVAL_RATIO: &str = "prune.survival_ratio";
    /// Counter: symmetrize stages whose artifact was computed in degraded
    /// (budget-thresholded) mode. Cache hits of a degraded artifact do not
    /// recount.
    pub const SYM_DEGRADED_RUNS: &str = "sym.degraded_runs";
}

/// The input a pipeline runs over: a directed graph plus optional ground
/// truth, under a dataset name used in records.
#[derive(Clone)]
pub struct PipelineInput {
    /// Dataset name recorded in [`RunRecord::dataset`].
    pub name: String,
    /// The directed graph.
    pub graph: Arc<DiGraph>,
    /// Ground truth for F-score evaluation, when available.
    pub truth: Option<Arc<GroundTruth>>,
}

impl PipelineInput {
    /// Wraps a graph (and optional truth) as pipeline input.
    pub fn new(name: impl Into<String>, graph: DiGraph, truth: Option<GroundTruth>) -> Self {
        PipelineInput {
            name: name.into(),
            graph: Arc::new(graph),
            truth: truth.map(Arc::new),
        }
    }
}

/// Retry policy for transiently-failing stages: exponential backoff from
/// `base_delay_ms`, capped at `max_delay_ms`, with deterministic jitter
/// (hashed from node id and attempt number, so runs are reproducible
/// without an RNG while still decorrelating sibling retries).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per stage (1 = no retries).
    pub max_attempts: usize,
    /// Backoff before the second attempt, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single backoff delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 50,
            max_delay_ms: 2000,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay after failed attempt `attempt` (1-based) of `node`:
    /// `base · 2^(attempt-1)` capped at `max_delay_ms`, minus up to half
    /// of itself as jitter ("equal jitter" — always at least half the
    /// exponential delay, never above the cap).
    pub fn delay_ms(&self, node: usize, attempt: usize) -> u64 {
        let shift = attempt.saturating_sub(1).min(20) as u32;
        let capped = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        let mut h = Fnv64::new();
        h.write_u64(node as u64).write_u64(attempt as u64);
        let jitter = h.finish() % (capped / 2 + 1);
        capped - jitter
    }
}

/// Engine-wide execution options.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads. `0` means one per available core (capped at 8).
    pub threads: usize,
    /// Per-stage wall-clock deadline. A stage exceeding it is cancelled
    /// (its chain is skipped) while the rest of the sweep continues.
    pub stage_deadline: Option<Duration>,
    /// Retry policy for transiently-failing stages.
    pub retry: RetryPolicy,
    /// SpGEMM output budget, in stored entries. When a similarity
    /// symmetrization's upper-bound estimate exceeds it, the product is
    /// computed in degraded (adaptively-thresholded) mode instead of
    /// aborting; the resulting records carry `degraded: true`.
    pub memory_budget: Option<usize>,
    /// SpGEMM worker threads for the similarity symmetrizations (`0` =
    /// all cores, `1` = serial). `None` keeps the symmetrizer defaults,
    /// which honor `SYMCLUST_THREADS`. The kernels assemble output
    /// deterministically, so this knob never changes results — it is
    /// excluded from cache keys on purpose.
    pub spgemm_threads: Option<usize>,
    /// SpGEMM accumulator strategy for the similarity symmetrizations
    /// (adaptive / dense / sparse). `None` keeps the symmetrizer
    /// defaults, which honor `SYMCLUST_ACCUM`. Every strategy produces
    /// bit-identical output, so — like `spgemm_threads` — this knob is
    /// excluded from cache keys on purpose.
    pub spgemm_accum: Option<symclust_sparse::AccumStrategy>,
    /// Out-of-core panel plan for the similarity symmetrizations. When
    /// engaged the SpGEMM runs tile by tile and may spill partial products
    /// to scratch files, bounding peak memory. `None` keeps the
    /// symmetrizer defaults, which honor `SYMCLUST_PANEL_ROWS` /
    /// `SYMCLUST_MEMORY_BUDGET`. The panel path is bit-identical to the
    /// in-memory one, so — like the other SpGEMM knobs — it is excluded
    /// from cache keys on purpose.
    pub spgemm_panel: Option<symclust_sparse::PanelPlan>,
    /// Path of the durable run journal. When set, chains recorded there
    /// are resumed instead of re-executed, and every chain completed by
    /// this run is appended.
    pub journal: Option<PathBuf>,
    /// Metrics registry the sweep records into. `None` gives each sweep a
    /// private registry (its snapshot still lands in
    /// [`SweepResult::metrics`]); passing a shared registry accumulates
    /// counters across sweeps, mirroring how the artifact cache persists.
    pub metrics: Option<MetricsRegistry>,
    /// Run the CSR structural validators
    /// ([`CsrMatrix::validate_symmetric`]) on every symmetrize and prune
    /// output, failing the stage with a corruption error instead of
    /// letting a malformed matrix poison downstream clustering. Debug
    /// builds always validate; this flag extends the checks to release
    /// builds (`--paranoid` on the CLI). Validation is pure observation —
    /// it never touches metrics or cache keys, so a paranoid run produces
    /// byte-identical artifacts and counters.
    ///
    /// [`CsrMatrix::validate_symmetric`]: symclust_sparse::CsrMatrix::validate_symmetric
    pub paranoid: bool,
}

impl EngineOptions {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        }
    }
}

/// Outcome of one sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// Completed run records, in plan order (method-major, matching the
    /// serial reference loops). Partial on cancellation.
    pub records: Vec<RunRecord>,
    /// Whether the run-level token tripped before the sweep finished.
    pub cancelled: bool,
    /// Stages skipped or aborted by cancellation/deadline (count).
    pub skipped: usize,
    /// `(stage label, error)` for stages that failed outright.
    pub failures: Vec<(String, String)>,
    /// Chains resumed from the run journal without re-execution (count of
    /// records, not stages).
    pub resumed: usize,
    /// Cache hits/misses incurred by *this* sweep (delta, not engine
    /// lifetime totals).
    pub cache: CacheStats,
    /// Metrics snapshot taken after the worker pool drained — the same
    /// data emitted as the run's [`Event::MetricsSnapshot`]. Cumulative
    /// when [`EngineOptions::metrics`] carries a shared registry.
    pub metrics: MetricsSnapshot,
}

/// How a stage settled, as reported by a worker.
enum StageResult {
    Done(NodeOutput),
    Cancelled,
    Failed { error: String, panic: bool },
}

/// The artifact a settled node leaves for its dependents.
#[derive(Clone)]
enum NodeOutput {
    /// Load: the input graph's content fingerprint.
    Fingerprint(u64),
    /// Symmetrize/Prune: shared symmetrized graph.
    Sym(Arc<SymmetrizedGraph>),
    /// Cluster: the clustering, its wall time, and the symmetrized graph
    /// it was computed on (carried through for record assembly).
    Clustered {
        clustering: Arc<Clustering>,
        secs: f64,
        sym: Arc<SymmetrizedGraph>,
    },
    /// Evaluate: the finished record.
    Record(Box<RunRecord>),
}

/// Shared state the workers read.
struct ExecCtx<'a> {
    input: &'a PipelineInput,
    cache: &'a ArtifactCache<SymmetrizedGraph>,
    outputs: Mutex<HashMap<usize, NodeOutput>>,
    sink: &'a (dyn Fn(Event) + Send + Sync),
    retry: RetryPolicy,
    memory_budget: Option<usize>,
    spgemm_threads: Option<usize>,
    spgemm_accum: Option<symclust_sparse::AccumStrategy>,
    spgemm_panel: Option<symclust_sparse::PanelPlan>,
    metrics: &'a MetricsRegistry,
    paranoid: bool,
}

impl ExecCtx<'_> {
    /// Whether stage outputs get the full structural validation pass:
    /// always in debug builds, on request (`--paranoid`) in release.
    fn validate_outputs(&self) -> bool {
        self.paranoid || cfg!(debug_assertions)
    }
}

/// Per-stage cancellation tokens for nodes currently in flight, keyed by
/// node id. Registered at dispatch and released when the node settles, so
/// the registry stays bounded by the worker count — the previous design
/// (an append-only `Vec`) never released tokens, which leaked one token
/// per dispatched stage for the whole sweep and made run-level
/// cancellation touch every stale token ever created.
struct TokenRegistry {
    tokens: Mutex<HashMap<usize, CancelToken>>,
}

impl TokenRegistry {
    fn new() -> Self {
        TokenRegistry {
            tokens: Mutex::new(HashMap::new()),
        }
    }

    fn register(&self, node: usize, token: CancelToken) {
        self.tokens.lock().expect("token lock").insert(node, token);
    }

    fn release(&self, node: usize) {
        self.tokens.lock().expect("token lock").remove(&node);
    }

    fn cancel_all(&self) {
        for t in self.tokens.lock().expect("token lock").values() {
            t.cancel();
        }
    }

    fn len(&self) -> usize {
        self.tokens.lock().expect("token lock").len()
    }
}

/// The pipeline engine: a persistent artifact cache plus execution
/// options. Reusing one engine across sweeps (e.g. an inflation sweep
/// after a k sweep) carries symmetrization artifacts over, so each
/// distinct (graph, method, params) computes exactly once per process.
pub struct Engine {
    cache: ArtifactCache<SymmetrizedGraph>,
    opts: EngineOptions,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(EngineOptions::default())
    }
}

impl Engine {
    /// Creates an engine with the given options and an empty cache.
    pub fn new(opts: EngineOptions) -> Self {
        Engine {
            cache: ArtifactCache::new(),
            opts,
        }
    }

    /// Lifetime cache counters (across all sweeps run on this engine).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs a sweep to completion, streaming events to `sink`.
    pub fn run(
        &self,
        input: &PipelineInput,
        spec: &PipelineSpec,
        sink: &(dyn Fn(Event) + Send + Sync),
    ) -> SweepResult {
        self.run_cancellable(input, spec, &CancelToken::new(), sink)
    }

    /// [`run`](Self::run) under an externally-owned cancellation token.
    /// Tripping the token stops dispatch promptly; stages already finished
    /// keep their records in the (partial) result.
    pub fn run_cancellable(
        &self,
        input: &PipelineInput,
        spec: &PipelineSpec,
        run_token: &CancelToken,
        sink: &(dyn Fn(Event) + Send + Sync),
    ) -> SweepResult {
        let plan = Plan::build(spec);
        let total = plan.len();
        let threads = self.opts.effective_threads();
        let stats_before = self.cache.stats();
        let registry = self.opts.metrics.clone().unwrap_or_default();

        let ctx = ExecCtx {
            input,
            cache: &self.cache,
            outputs: Mutex::new(HashMap::new()),
            sink,
            retry: self.opts.retry.clone(),
            memory_budget: self.opts.memory_budget,
            spgemm_threads: self.opts.spgemm_threads,
            spgemm_accum: self.opts.spgemm_accum,
            spgemm_panel: self.opts.spgemm_panel.clone(),
            metrics: &registry,
            paranoid: self.opts.paranoid,
        };

        let mut indeg = plan.indegrees();
        let dependents = plan.dependents();
        let mut settled = vec![false; total];
        let mut n_settled = 0usize;
        let mut skipped = 0usize;
        let mut failures: Vec<(String, String)> = Vec::new();
        let mut resumed = 0usize;

        // Crash-safe resume: open the journal (if any), address every
        // evaluate chain by the composition of its stage keys, and
        // pre-settle chains the journal proves complete.
        let mut journal: Option<RunJournal> = None;
        let mut chain_keys: HashMap<usize, u64> = HashMap::new();
        if let Some(path) = &self.opts.journal {
            match RunJournal::open(path) {
                Ok(j) => journal = Some(j),
                Err(e) => failures.push((
                    "journal".to_string(),
                    format!("could not open run journal {}: {e}", path.display()),
                )),
            }
        }
        if let Some(j) = &journal {
            let mut h = Fnv64::new();
            h.write_str(&input.name);
            h.write_u64(graph_fingerprint(&input.graph));
            let root_fp = h.finish();
            for node in &plan.nodes {
                if node.kind == StageKind::Evaluate {
                    chain_keys.insert(node.id, chain_key(&plan, node, root_fp, &self.opts));
                }
            }
            for node in &plan.nodes {
                let Some(&key) = chain_keys.get(&node.id) else {
                    continue;
                };
                let Some(record) = j.get(key) else { continue };
                // The whole chain (sym → [prune] → cluster → evaluate) is
                // settled without execution; Load still runs (it only
                // fingerprints) and other chains are untouched — chains
                // share no nodes except Load.
                for id in chain_node_ids(&plan, node.id) {
                    debug_assert!(!settled[id], "chains must be disjoint");
                    settled[id] = true;
                    n_settled += 1;
                    let n = &plan.nodes[id];
                    (ctx.sink)(Event::StageResumed {
                        node: id,
                        stage: n.kind,
                        label: n.label.clone(),
                        key,
                    });
                }
                ctx.outputs
                    .lock()
                    .expect("outputs lock")
                    .insert(node.id, NodeOutput::Record(Box::new(record.clone())));
                resumed += 1;
            }
        }

        // Per-stage tokens handed to workers. With no deadline configured
        // the run token itself is used, so mid-stage cancellation is
        // immediate; with a deadline each stage gets its own deadline
        // token, registered (and released on settle) so run-level
        // cancellation still reaches stages already in flight.
        let token_registry = TokenRegistry::new();
        let make_stage_token = |id: usize| -> CancelToken {
            match self.opts.stage_deadline {
                None => run_token.clone(),
                Some(d) => {
                    let t = CancelToken::with_deadline(d);
                    if run_token.is_cancelled() {
                        t.cancel();
                    }
                    token_registry.register(id, t.clone());
                    t
                }
            }
        };

        let (task_tx, task_rx) = bounded::<(usize, CancelToken)>(threads);
        let (done_tx, done_rx) = unbounded::<(usize, StageResult)>();

        let mut ready: VecDeque<usize> = (0..total)
            .filter(|&i| indeg[i] == 0 && !settled[i])
            .collect();
        let mut cancelled_broadcast = false;
        let queue_gauge = registry.gauge(metric_names::QUEUE_DEPTH_HWM);
        queue_gauge.record_max(ready.len() as f64);

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                let ctx = &ctx;
                let plan = &plan;
                scope.spawn(move |_| {
                    while let Ok((id, token)) = task_rx.recv() {
                        let result = run_stage(&plan.nodes[id], ctx, &token);
                        if done_tx.send((id, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            // Only workers' clones keep these halves alive.
            drop(task_rx);
            drop(done_tx);

            // Dispatcher loop.
            let skip_subtree = |root: usize,
                                settled: &mut Vec<bool>,
                                n_settled: &mut usize,
                                skipped: &mut usize| {
                let mut stack = vec![root];
                while let Some(id) = stack.pop() {
                    if settled[id] {
                        continue;
                    }
                    settled[id] = true;
                    *n_settled += 1;
                    *skipped += 1;
                    let node = &plan.nodes[id];
                    (ctx.sink)(Event::Cancelled {
                        node: id,
                        stage: node.kind,
                        label: node.label.clone(),
                    });
                    stack.extend(dependents[id].iter().copied());
                }
            };

            while n_settled < total {
                if run_token.is_cancelled() && !cancelled_broadcast {
                    cancelled_broadcast = true;
                    token_registry.cancel_all();
                }

                if run_token.is_cancelled() {
                    // Skip everything not yet dispatched.
                    while let Some(id) = ready.pop_front() {
                        skip_subtree(id, &mut settled, &mut n_settled, &mut skipped);
                    }
                } else {
                    while let Some(id) = ready.pop_front() {
                        // Blocking bounded send = backpressure: stall here
                        // (instead of queueing) while all workers are busy.
                        if task_tx.send((id, make_stage_token(id))).is_err() {
                            token_registry.release(id);
                            skip_subtree(id, &mut settled, &mut n_settled, &mut skipped);
                        }
                    }
                }
                if n_settled >= total {
                    break;
                }

                match done_rx.recv_timeout(Duration::from_millis(25)) {
                    Ok((id, result)) => {
                        debug_assert!(!settled[id]);
                        settled[id] = true;
                        n_settled += 1;
                        token_registry.release(id);
                        match result {
                            StageResult::Done(output) => {
                                if let NodeOutput::Record(record) = &output {
                                    if let (Some(j), Some(&key)) =
                                        (journal.as_mut(), chain_keys.get(&id))
                                    {
                                        if let Err(e) = j.append(key, record) {
                                            failures.push((
                                                "journal".to_string(),
                                                format!("could not append to run journal: {e}"),
                                            ));
                                        }
                                    }
                                }
                                ctx.outputs.lock().expect("outputs lock").insert(id, output);
                                for &dep in &dependents[id] {
                                    if settled[dep] {
                                        continue; // pre-settled by resume
                                    }
                                    indeg[dep] -= 1;
                                    if indeg[dep] == 0 {
                                        ready.push_back(dep);
                                    }
                                }
                                queue_gauge.record_max(ready.len() as f64);
                            }
                            StageResult::Cancelled => {
                                skipped += 1;
                                let node = &plan.nodes[id];
                                (ctx.sink)(Event::Cancelled {
                                    node: id,
                                    stage: node.kind,
                                    label: node.label.clone(),
                                });
                                for &dep in &dependents[id] {
                                    skip_subtree(dep, &mut settled, &mut n_settled, &mut skipped);
                                }
                            }
                            StageResult::Failed { error, panic } => {
                                let node = &plan.nodes[id];
                                (ctx.sink)(Event::StageFailed {
                                    node: id,
                                    stage: node.kind,
                                    label: node.label.clone(),
                                    error: error.clone(),
                                    panic,
                                });
                                failures.push((node.label.clone(), error));
                                for &dep in &dependents[id] {
                                    skip_subtree(dep, &mut settled, &mut n_settled, &mut skipped);
                                }
                            }
                        }
                        (ctx.sink)(Event::Progress {
                            completed: n_settled,
                            total,
                        });
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            drop(task_tx); // ends the workers' recv loops
        })
        .expect("engine worker pool");

        // Every dispatched stage settled, so every registered stage token
        // must have been released — a non-empty registry is the token leak
        // this registry exists to prevent.
        debug_assert_eq!(token_registry.len(), 0, "stage token leak");

        // Collect records in plan (node-id) order for deterministic output.
        let mut records = Vec::new();
        let outputs = ctx.outputs.into_inner().expect("outputs lock");
        let mut ids: Vec<usize> = outputs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if let Some(NodeOutput::Record(r)) = outputs.get(&id) {
                records.push((**r).clone());
            }
        }

        let stats_after = self.cache.stats();
        let cache_delta = CacheStats {
            hits: stats_after.hits - stats_before.hits,
            misses: stats_after.misses - stats_before.misses,
            dedups: stats_after.dedups - stats_before.dedups,
        };
        registry
            .counter(metric_names::CACHE_HITS)
            .add(cache_delta.hits as u64);
        registry
            .counter(metric_names::CACHE_MISSES)
            .add(cache_delta.misses as u64);
        registry
            .counter(metric_names::INFLIGHT_DEDUPS)
            .add(cache_delta.dedups as u64);
        let snapshot = registry.snapshot();
        sink(Event::MetricsSnapshot {
            snapshot: snapshot.clone(),
        });
        SweepResult {
            records,
            cancelled: run_token.is_cancelled(),
            skipped,
            failures,
            resumed,
            cache: cache_delta,
            metrics: snapshot,
        }
    }
}

/// The named fault point a stage attempt fires (see [`crate::faultpoint`];
/// compiled to a no-op without the `fault-injection` feature).
fn fault_name(node: &StageNode) -> String {
    format!("{}:{}", node.kind.name(), node.label)
}

#[cfg(feature = "fault-injection")]
fn fire_fault(name: &str) -> Result<(), String> {
    crate::faultpoint::fire(name)
}

#[cfg(not(feature = "fault-injection"))]
fn fire_fault(_name: &str) -> Result<(), String> {
    Ok(())
}

/// The SpGEMM budget a symmetrize stage actually runs under: the
/// configured budget, or a single stored entry when a simulated-OOM fault
/// is armed at the stage's fault point.
fn effective_budget(base: Option<usize>, fault: &str) -> Option<usize> {
    #[cfg(feature = "fault-injection")]
    if crate::faultpoint::oom_armed(fault) {
        return Some(1);
    }
    let _ = fault;
    base
}

/// Content-addressed key for one evaluate chain: the dataset/graph root
/// fingerprint composed through every stage's `(name, params)` encoding.
/// Declarative (no intermediate artifacts needed), so it can be computed
/// before any stage runs — that is what makes journal resume possible.
fn chain_key(plan: &Plan, eval: &StageNode, root_fp: u64, opts: &EngineOptions) -> u64 {
    let cluster = &plan.nodes[eval.deps[0]];
    let upstream = &plan.nodes[cluster.deps[0]];
    let (prune, sym) = if upstream.kind == StageKind::Prune {
        (Some(upstream), &plan.nodes[upstream.deps[0]])
    } else {
        (None, upstream)
    };
    let method = eval.method.expect("evaluate node has a method");
    let budget = effective_budget(opts.memory_budget, &fault_name(sym));
    let (sym_stage, sym_params) = method.cache_params_with_budget(budget);
    let mut key = stage_key(root_fp, sym_stage, &sym_params);
    if let Some(p) = prune {
        let t = p.prune_threshold.expect("prune node has a threshold");
        key = stage_key(key, "prune", &[t]);
    }
    let clusterer = eval.clusterer.expect("evaluate node has a clusterer");
    let (cl_stage, cl_params) = clusterer.cache_params();
    stage_key(key, cl_stage, &cl_params)
}

/// The node ids of an evaluate chain (symmetrize up to evaluate, excluding
/// the shared Load node), in ascending id order.
fn chain_node_ids(plan: &Plan, eval_id: usize) -> Vec<usize> {
    let mut ids = vec![eval_id];
    let mut cursor = plan.nodes[eval_id].deps[0];
    while plan.nodes[cursor].kind != StageKind::Load {
        ids.push(cursor);
        cursor = plan.nodes[cursor].deps[0];
    }
    ids.reverse();
    ids
}

/// Fetches a dependency's output (present by construction: the dispatcher
/// only releases a node once all dependencies have settled successfully).
fn dep_output(ctx: &ExecCtx<'_>, id: usize) -> NodeOutput {
    ctx.outputs
        .lock()
        .expect("outputs lock")
        .get(&id)
        .cloned()
        .expect("dependency output missing")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: (non-string payload)".to_string()
    }
}

/// Failure classification for the retry loop: errors that self-describe as
/// transient (I/O hiccups, injected transient faults) are worth retrying;
/// everything else — panics included — is treated as deterministic and
/// fails the chain immediately.
fn is_transient(error: &str) -> bool {
    error.contains("transient")
}

/// Sleeps `delay_ms` in short increments, polling the stage token so a
/// cancellation (run-level or deadline) cuts the backoff short. Returns
/// `false` when cancelled.
fn sleep_unless_cancelled(token: &CancelToken, delay_ms: u64) -> bool {
    let deadline = Instant::now() + Duration::from_millis(delay_ms);
    loop {
        if token.is_cancelled() {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
    }
}

/// Executes one stage with panic isolation and transient-failure retry.
/// Runs on a worker thread.
fn run_stage(node: &StageNode, ctx: &ExecCtx<'_>, token: &CancelToken) -> StageResult {
    if token.is_cancelled() {
        return StageResult::Cancelled;
    }
    (ctx.sink)(Event::StageStarted {
        node: node.id,
        stage: node.kind,
        label: node.label.clone(),
    });
    let max_attempts = ctx.retry.max_attempts.max(1);
    let mut attempt = 1;
    loop {
        let outcome =
            std::panic::catch_unwind(AssertUnwindSafe(|| run_stage_attempt(node, ctx, token)));
        match outcome {
            Err(payload) => {
                // A panicking kernel is isolated here: the worker thread
                // survives, sibling chains keep running, and the failure
                // surfaces as a structured event instead of an abort.
                return StageResult::Failed {
                    error: panic_message(payload.as_ref()),
                    panic: true,
                };
            }
            Ok(StageResult::Failed {
                error,
                panic: false,
            }) if attempt < max_attempts && is_transient(&error) => {
                ctx.metrics.counter(metric_names::RETRIES).inc();
                let delay_ms = ctx.retry.delay_ms(node.id, attempt);
                (ctx.sink)(Event::StageRetrying {
                    node: node.id,
                    stage: node.kind,
                    label: node.label.clone(),
                    attempt,
                    max_attempts,
                    delay_ms,
                    error,
                });
                if !sleep_unless_cancelled(token, delay_ms) {
                    return StageResult::Cancelled;
                }
                attempt += 1;
            }
            Ok(result) => return result,
        }
    }
}

/// One attempt at a stage's actual work, emitting its finished/cache-hit
/// events.
fn run_stage_attempt(node: &StageNode, ctx: &ExecCtx<'_>, token: &CancelToken) -> StageResult {
    if token.is_cancelled() {
        return StageResult::Cancelled;
    }
    // RAII: every attempt (cache hits included) lands in `stage.<kind>`.
    let _stage_span = ctx.metrics.span(&format!("stage.{}", node.kind.name()));
    let start = Instant::now();
    let finished = |output_items: usize| Event::StageFinished {
        node: node.id,
        stage: node.kind,
        label: node.label.clone(),
        secs: start.elapsed().as_secs_f64(),
        output_items,
    };
    let failed = |error: String| StageResult::Failed {
        error,
        panic: false,
    };

    match node.kind {
        StageKind::Load => {
            let fp = graph_fingerprint(&ctx.input.graph);
            (ctx.sink)(finished(ctx.input.graph.n_nodes()));
            StageResult::Done(NodeOutput::Fingerprint(fp))
        }
        StageKind::Symmetrize => {
            let NodeOutput::Fingerprint(fp) = dep_output(ctx, node.deps[0]) else {
                return failed("load artifact has wrong type".into());
            };
            let method = node.method.expect("symmetrize node has a method");
            let fault = fault_name(node);
            let budget = effective_budget(ctx.memory_budget, &fault);
            let (stage_name, params) = method.cache_params_with_budget(budget);
            let key = stage_key(fp, stage_name, &params);
            // The fault point fires inside the compute closure so an
            // injected panic also exercises the cache's in-flight guard.
            match ctx.cache.get_or_compute(key, || {
                fire_fault(&fault).map_err(SymmetrizeError::InvalidConfig)?;
                let sym = method.symmetrize_observed_configured(
                    &ctx.input.graph,
                    token,
                    budget,
                    ctx.spgemm_threads,
                    ctx.spgemm_accum,
                    ctx.spgemm_panel.clone(),
                    Some(ctx.metrics),
                )?;
                // Structural + exact-symmetry validation at the kernel
                // boundary (DESIGN.md §13). Exact symmetry is the contract
                // here: the SYRK mirror pass and the commutative additive
                // combines both produce bit-identical (i,j)/(j,i) pairs.
                if ctx.validate_outputs() {
                    sym.adjacency()
                        .validate_symmetric()
                        .map_err(SymmetrizeError::Sparse)?;
                }
                Ok::<_, SymmetrizeError>(sym)
            }) {
                Ok((sym, hit)) => {
                    if hit {
                        (ctx.sink)(Event::CacheHit {
                            node: node.id,
                            stage: node.kind,
                            label: node.label.clone(),
                            key,
                        });
                    } else {
                        // Per-variant wall time and degraded fallbacks are
                        // attributed to actual computations only — a cache
                        // hit of a degraded artifact does not recount.
                        ctx.metrics.observe_span_secs(
                            &format!("sym.{}", node.label),
                            start.elapsed().as_secs_f64(),
                        );
                        if sym.degraded() {
                            ctx.metrics.counter(metric_names::SYM_DEGRADED_RUNS).inc();
                        }
                        (ctx.sink)(finished(sym.n_edges()));
                    }
                    StageResult::Done(NodeOutput::Sym(sym))
                }
                Err(e) if e.is_cancelled() => StageResult::Cancelled,
                Err(e) => failed(e.to_string()),
            }
        }
        StageKind::Prune => {
            let NodeOutput::Sym(sym) = dep_output(ctx, node.deps[0]) else {
                return failed("prune input has wrong type".into());
            };
            if token.is_cancelled() {
                return StageResult::Cancelled;
            }
            // Threshold appears as the stage parameter; the input is
            // addressed by its exact matrix content.
            let threshold = node.prune_threshold.expect("prune node has a threshold");
            let key = stage_key(matrix_fingerprint(sym.adjacency()), "prune", &[threshold]);
            let fault = fault_name(node);
            let compute = || -> Result<SymmetrizedGraph, String> {
                fire_fault(&fault)?;
                let edges_in = sym.adjacency().nnz();
                let (pruned, _dropped) = ops::prune(sym.adjacency(), threshold);
                // Pruning thresholds on the value, and mirrored entries
                // carry bit-equal values, so symmetry must survive; a
                // violation here is a prune-kernel bug (DESIGN.md §13).
                if ctx.validate_outputs() {
                    pruned.validate_symmetric().map_err(|e| e.to_string())?;
                }
                let edges_out = pruned.nnz();
                ctx.metrics
                    .counter(metric_names::PRUNE_EDGES_IN)
                    .add(edges_in as u64);
                ctx.metrics
                    .counter(metric_names::PRUNE_EDGES_OUT)
                    .add(edges_out as u64);
                if edges_in > 0 {
                    ctx.metrics
                        .gauge(metric_names::PRUNE_SURVIVAL_RATIO)
                        .set(edges_out as f64 / edges_in as f64);
                }
                let mut un = UnGraph::from_symmetric_unchecked(pruned);
                if let Some(labels) = sym.graph().labels() {
                    un = un.with_labels(labels.to_vec()).map_err(|e| e.to_string())?;
                }
                Ok(SymmetrizedGraph::new(
                    un,
                    sym.method().to_string(),
                    threshold,
                    sym.elapsed() + start.elapsed(),
                )
                .with_degraded(sym.degraded()))
            };
            match ctx.cache.get_or_compute(key, compute) {
                Ok((pruned, hit)) => {
                    if hit {
                        (ctx.sink)(Event::CacheHit {
                            node: node.id,
                            stage: node.kind,
                            label: node.label.clone(),
                            key,
                        });
                    } else {
                        (ctx.sink)(finished(pruned.n_edges()));
                    }
                    StageResult::Done(NodeOutput::Sym(pruned))
                }
                Err(e) => failed(e),
            }
        }
        StageKind::Cluster => {
            let NodeOutput::Sym(sym) = dep_output(ctx, node.deps[0]) else {
                return failed("cluster input has wrong type".into());
            };
            if let Err(e) = fire_fault(&fault_name(node)) {
                return failed(e);
            }
            let clusterer = node.clusterer.expect("cluster node has a clusterer");
            match clusterer.cluster_observed(sym.graph(), token, Some(ctx.metrics)) {
                Ok(clustering) => {
                    let secs = start.elapsed().as_secs_f64();
                    (ctx.sink)(finished(clustering.n_clusters()));
                    StageResult::Done(NodeOutput::Clustered {
                        clustering: Arc::new(clustering),
                        secs,
                        sym,
                    })
                }
                Err(e) if e.is_cancelled() => StageResult::Cancelled,
                Err(e) => failed(e.to_string()),
            }
        }
        StageKind::Evaluate => {
            let NodeOutput::Clustered {
                clustering,
                secs,
                sym,
            } = dep_output(ctx, node.deps[0])
            else {
                return failed("evaluate input has wrong type".into());
            };
            let method = node.method.expect("evaluate node has a method");
            let clusterer = node.clusterer.expect("evaluate node has a clusterer");
            let f_score = ctx
                .input
                .truth
                .as_deref()
                .map(|t| avg_f_score(clustering.assignments(), t).avg_f);
            let record = RunRecord {
                dataset: ctx.input.name.clone(),
                symmetrization: method.name(),
                algorithm: clusterer.name().to_string(),
                n_clusters: clustering.n_clusters(),
                f_score,
                cluster_secs: secs,
                symmetrize_secs: sym.elapsed().as_secs_f64(),
                sym_edges: sym.n_edges(),
                degraded: sym.degraded(),
                converged: clustering.converged(),
            };
            (ctx.sink)(finished(1));
            StageResult::Done(NodeOutput::Record(Box::new(record)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Clusterer, SymMethod};
    use symclust_graph::generators::figure1_graph;

    #[test]
    fn retry_delays_are_deterministic_bounded_and_jittered() {
        let p = RetryPolicy::default();
        for node in 0..20 {
            for attempt in 1..10 {
                let d = p.delay_ms(node, attempt);
                assert_eq!(d, p.delay_ms(node, attempt), "must be deterministic");
                let capped = (p.base_delay_ms << (attempt - 1).min(20)).min(p.max_delay_ms);
                assert!(d <= capped, "delay {d} above cap {capped}");
                assert!(d >= capped / 2, "delay {d} below half the cap {capped}");
            }
        }
        // Jitter decorrelates siblings: not every node gets the same delay.
        let delays: std::collections::HashSet<u64> =
            (0..50).map(|node| p.delay_ms(node, 2)).collect();
        assert!(delays.len() > 1, "jitter had no effect");
    }

    #[test]
    fn retry_delay_saturates_at_max() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 100,
            max_delay_ms: 400,
        };
        for attempt in 4..10 {
            assert!(p.delay_ms(0, attempt) <= 400);
        }
    }

    #[test]
    fn token_registry_registers_and_releases() {
        let reg = TokenRegistry::new();
        reg.register(1, CancelToken::new());
        reg.register(2, CancelToken::new());
        assert_eq!(reg.len(), 2);
        reg.release(1);
        assert_eq!(reg.len(), 1);
        reg.release(1); // releasing an absent node is harmless
        let t = CancelToken::new();
        reg.register(3, t.clone());
        reg.cancel_all();
        assert!(t.is_cancelled());
        reg.release(2);
        reg.release(3);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn transient_classifier_matches_injected_and_io_errors() {
        assert!(is_transient("transient: injected fault at cluster:X"));
        assert!(is_transient("io error: transient network failure"));
        assert!(!is_transient("invalid config: bad alpha"));
        assert!(!is_transient("panic: index out of bounds"));
    }

    /// Regression (token leak): a sweep under a short per-stage deadline
    /// must release every stage token it registers — previously tokens
    /// accumulated for the whole sweep — and a single-worker pool must
    /// survive deadline expiry mid-stage without wedging the bounded task
    /// channel. The `debug_assert_eq!(token_registry.len(), 0, ..)` at the
    /// end of `run_cancellable` enforces the leak-free property whenever
    /// this test runs (tests always build with debug assertions).
    #[test]
    fn deadline_expiry_releases_all_stage_tokens_and_frees_workers() {
        let g = figure1_graph();
        let input = PipelineInput::new("fig1", g, None);
        let spec = PipelineSpec {
            methods: SymMethod::lineup(0.0, 0.0),
            clusterers: vec![Clusterer::Metis { k: 2 }],
            extra_prune: Some(0.5),
        };
        let engine = Engine::new(EngineOptions {
            threads: 1,
            stage_deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        });
        // Run twice on the same engine: if a deadline expiry leaked a
        // worker or a channel slot, the second sweep would hang.
        for _ in 0..2 {
            let result = engine.run(&input, &spec, &|_| {});
            assert!(!result.cancelled);
            assert_eq!(result.resumed, 0, "no journal configured");
        }
    }

    #[test]
    fn chain_keys_are_distinct_per_chain_and_stable() {
        let spec = PipelineSpec {
            methods: SymMethod::lineup(1.0, 0.5),
            clusterers: vec![
                Clusterer::Metis { k: 3 },
                Clusterer::MlrMcl { inflation: 2.0 },
            ],
            extra_prune: Some(0.5),
        };
        let plan = Plan::build(&spec);
        let opts = EngineOptions::default();
        let mut keys = std::collections::HashSet::new();
        for node in &plan.nodes {
            if node.kind == StageKind::Evaluate {
                let k = chain_key(&plan, node, 42, &opts);
                assert_eq!(k, chain_key(&plan, node, 42, &opts), "stable");
                assert_ne!(k, chain_key(&plan, node, 43, &opts), "input-sensitive");
                assert!(keys.insert(k), "chain key collision");
            }
        }
        assert_eq!(keys.len(), 8);
        // A memory budget changes the chain keys of similarity methods
        // (their artifacts differ under a budget) but not A+A'/RW.
        let budgeted = EngineOptions {
            memory_budget: Some(1000),
            ..Default::default()
        };
        for node in &plan.nodes {
            if node.kind == StageKind::Evaluate {
                let method = node.method.unwrap();
                let same =
                    chain_key(&plan, node, 42, &opts) == chain_key(&plan, node, 42, &budgeted);
                assert_eq!(same, !method.uses_budget(), "{}", method.name());
            }
        }
    }

    #[test]
    fn chain_node_ids_walk_back_to_but_exclude_load() {
        let spec = PipelineSpec {
            methods: vec![SymMethod::PlusTranspose],
            clusterers: vec![Clusterer::Metis { k: 2 }],
            extra_prune: Some(0.5),
        };
        let plan = Plan::build(&spec);
        let eval_id = plan
            .nodes
            .iter()
            .find(|n| n.kind == StageKind::Evaluate)
            .unwrap()
            .id;
        let ids = chain_node_ids(&plan, eval_id);
        assert_eq!(ids.len(), 4); // sym, prune, cluster, evaluate
        assert!(!ids.contains(&0), "Load is shared, never pre-settled");
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending order");
        assert_eq!(*ids.last().unwrap(), eval_id);
    }
}

//! The pipeline executor: a crossbeam worker pool driving the stage DAG
//! with bounded-channel backpressure, a shared artifact cache, cooperative
//! cancellation with per-stage deadlines, and a structured event stream.
//!
//! Execution model:
//!
//! * The calling thread acts as the **dispatcher**. It tracks per-node
//!   in-degrees and pushes ready nodes into a *bounded* task channel
//!   (capacity = worker count), so dispatch stalls when every worker is
//!   busy rather than queueing unboundedly.
//! * `threads` **workers** loop over the task channel, execute one stage
//!   at a time, and report on an *unbounded* done channel (workers never
//!   block on reporting, so the pool cannot deadlock against a stalled
//!   dispatcher).
//! * The dispatcher receives done messages with a short timeout so it can
//!   also poll the run-level [`CancelToken`]; on cancellation it stops
//!   dispatching, cancels all in-flight stage tokens, and drains
//!   outstanding work. Records of already-completed chains are kept —
//!   cancellation surfaces *partial results*, it does not discard them.

use crate::cache::{ArtifactCache, CacheStats};
use crate::event::{Event, StageKind};
use crate::fingerprint::{graph_fingerprint, matrix_fingerprint, stage_key};
use crate::plan::{PipelineSpec, Plan, StageNode};
use crate::report::RunRecord;
use crossbeam::channel::{bounded, unbounded, RecvTimeoutError};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use symclust_cluster::Clustering;
use symclust_core::SymmetrizedGraph;
use symclust_eval::avg_f_score;
use symclust_graph::{DiGraph, GroundTruth, UnGraph};
use symclust_sparse::{ops, CancelToken};

/// The input a pipeline runs over: a directed graph plus optional ground
/// truth, under a dataset name used in records.
#[derive(Clone)]
pub struct PipelineInput {
    /// Dataset name recorded in [`RunRecord::dataset`].
    pub name: String,
    /// The directed graph.
    pub graph: Arc<DiGraph>,
    /// Ground truth for F-score evaluation, when available.
    pub truth: Option<Arc<GroundTruth>>,
}

impl PipelineInput {
    /// Wraps a graph (and optional truth) as pipeline input.
    pub fn new(name: impl Into<String>, graph: DiGraph, truth: Option<GroundTruth>) -> Self {
        PipelineInput {
            name: name.into(),
            graph: Arc::new(graph),
            truth: truth.map(Arc::new),
        }
    }
}

/// Engine-wide execution options.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads. `0` means one per available core (capped at 8).
    pub threads: usize,
    /// Per-stage wall-clock deadline. A stage exceeding it is cancelled
    /// (its chain is skipped) while the rest of the sweep continues.
    pub stage_deadline: Option<Duration>,
}

impl EngineOptions {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        }
    }
}

/// Outcome of one sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// Completed run records, in plan order (method-major, matching the
    /// serial reference loops). Partial on cancellation.
    pub records: Vec<RunRecord>,
    /// Whether the run-level token tripped before the sweep finished.
    pub cancelled: bool,
    /// Stages skipped or aborted by cancellation/deadline (count).
    pub skipped: usize,
    /// `(stage label, error)` for stages that failed outright.
    pub failures: Vec<(String, String)>,
    /// Cache hits/misses incurred by *this* sweep (delta, not engine
    /// lifetime totals).
    pub cache: CacheStats,
}

/// How a stage settled, as reported by a worker.
enum StageResult {
    Done(NodeOutput),
    Cancelled,
    Failed(String),
}

/// The artifact a settled node leaves for its dependents.
#[derive(Clone)]
enum NodeOutput {
    /// Load: the input graph's content fingerprint.
    Fingerprint(u64),
    /// Symmetrize/Prune: shared symmetrized graph.
    Sym(Arc<SymmetrizedGraph>),
    /// Cluster: the clustering, its wall time, and the symmetrized graph
    /// it was computed on (carried through for record assembly).
    Clustered {
        clustering: Arc<Clustering>,
        secs: f64,
        sym: Arc<SymmetrizedGraph>,
    },
    /// Evaluate: the finished record.
    Record(Box<RunRecord>),
}

/// Shared state the workers read.
struct ExecCtx<'a> {
    input: &'a PipelineInput,
    cache: &'a ArtifactCache<SymmetrizedGraph>,
    outputs: Mutex<HashMap<usize, NodeOutput>>,
    sink: &'a (dyn Fn(Event) + Send + Sync),
}

/// The pipeline engine: a persistent artifact cache plus execution
/// options. Reusing one engine across sweeps (e.g. an inflation sweep
/// after a k sweep) carries symmetrization artifacts over, so each
/// distinct (graph, method, params) computes exactly once per process.
pub struct Engine {
    cache: ArtifactCache<SymmetrizedGraph>,
    opts: EngineOptions,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(EngineOptions::default())
    }
}

impl Engine {
    /// Creates an engine with the given options and an empty cache.
    pub fn new(opts: EngineOptions) -> Self {
        Engine {
            cache: ArtifactCache::new(),
            opts,
        }
    }

    /// Lifetime cache counters (across all sweeps run on this engine).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs a sweep to completion, streaming events to `sink`.
    pub fn run(
        &self,
        input: &PipelineInput,
        spec: &PipelineSpec,
        sink: &(dyn Fn(Event) + Send + Sync),
    ) -> SweepResult {
        self.run_cancellable(input, spec, &CancelToken::new(), sink)
    }

    /// [`run`](Self::run) under an externally-owned cancellation token.
    /// Tripping the token stops dispatch promptly; stages already finished
    /// keep their records in the (partial) result.
    pub fn run_cancellable(
        &self,
        input: &PipelineInput,
        spec: &PipelineSpec,
        run_token: &CancelToken,
        sink: &(dyn Fn(Event) + Send + Sync),
    ) -> SweepResult {
        let plan = Plan::build(spec);
        let total = plan.len();
        let threads = self.opts.effective_threads();
        let stats_before = self.cache.stats();

        let ctx = ExecCtx {
            input,
            cache: &self.cache,
            outputs: Mutex::new(HashMap::new()),
            sink,
        };

        // Per-stage tokens handed to workers. With no deadline configured
        // the run token itself is used, so mid-stage cancellation is
        // immediate; with a deadline each stage gets its own deadline
        // token, registered here so run-level cancellation still reaches
        // stages already in flight.
        let active_tokens: Mutex<Vec<CancelToken>> = Mutex::new(Vec::new());
        let make_stage_token = || -> CancelToken {
            match self.opts.stage_deadline {
                None => run_token.clone(),
                Some(d) => {
                    let t = CancelToken::with_deadline(d);
                    if run_token.is_cancelled() {
                        t.cancel();
                    }
                    active_tokens.lock().expect("token lock").push(t.clone());
                    t
                }
            }
        };

        let (task_tx, task_rx) = bounded::<(usize, CancelToken)>(threads);
        let (done_tx, done_rx) = unbounded::<(usize, StageResult)>();

        let mut indeg = plan.indegrees();
        let dependents = plan.dependents();
        let mut settled = vec![false; total];
        let mut n_settled = 0usize;
        let mut skipped = 0usize;
        let mut failures: Vec<(String, String)> = Vec::new();
        let mut ready: VecDeque<usize> = (0..total).filter(|&i| indeg[i] == 0).collect();
        let mut cancelled_broadcast = false;

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                let ctx = &ctx;
                let plan = &plan;
                scope.spawn(move |_| {
                    while let Ok((id, token)) = task_rx.recv() {
                        let result = run_stage(&plan.nodes[id], ctx, &token);
                        if done_tx.send((id, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            // Only workers' clones keep these halves alive.
            drop(task_rx);
            drop(done_tx);

            // Dispatcher loop.
            let skip_subtree = |root: usize,
                                settled: &mut Vec<bool>,
                                n_settled: &mut usize,
                                skipped: &mut usize| {
                let mut stack = vec![root];
                while let Some(id) = stack.pop() {
                    if settled[id] {
                        continue;
                    }
                    settled[id] = true;
                    *n_settled += 1;
                    *skipped += 1;
                    let node = &plan.nodes[id];
                    (ctx.sink)(Event::Cancelled {
                        node: id,
                        stage: node.kind,
                        label: node.label.clone(),
                    });
                    stack.extend(dependents[id].iter().copied());
                }
            };

            while n_settled < total {
                if run_token.is_cancelled() && !cancelled_broadcast {
                    cancelled_broadcast = true;
                    for t in active_tokens.lock().expect("token lock").iter() {
                        t.cancel();
                    }
                }

                if run_token.is_cancelled() {
                    // Skip everything not yet dispatched.
                    while let Some(id) = ready.pop_front() {
                        skip_subtree(id, &mut settled, &mut n_settled, &mut skipped);
                    }
                } else {
                    while let Some(id) = ready.pop_front() {
                        // Blocking bounded send = backpressure: stall here
                        // (instead of queueing) while all workers are busy.
                        if task_tx.send((id, make_stage_token())).is_err() {
                            skip_subtree(id, &mut settled, &mut n_settled, &mut skipped);
                        }
                    }
                }
                if n_settled >= total {
                    break;
                }

                match done_rx.recv_timeout(Duration::from_millis(25)) {
                    Ok((id, result)) => {
                        debug_assert!(!settled[id]);
                        settled[id] = true;
                        n_settled += 1;
                        match result {
                            StageResult::Done(output) => {
                                ctx.outputs.lock().expect("outputs lock").insert(id, output);
                                for &dep in &dependents[id] {
                                    indeg[dep] -= 1;
                                    if indeg[dep] == 0 {
                                        ready.push_back(dep);
                                    }
                                }
                            }
                            StageResult::Cancelled => {
                                skipped += 1;
                                let node = &plan.nodes[id];
                                (ctx.sink)(Event::Cancelled {
                                    node: id,
                                    stage: node.kind,
                                    label: node.label.clone(),
                                });
                                for &dep in &dependents[id] {
                                    skip_subtree(dep, &mut settled, &mut n_settled, &mut skipped);
                                }
                            }
                            StageResult::Failed(err) => {
                                let node = &plan.nodes[id];
                                (ctx.sink)(Event::StageFailed {
                                    node: id,
                                    stage: node.kind,
                                    label: node.label.clone(),
                                    error: err.clone(),
                                });
                                failures.push((node.label.clone(), err));
                                for &dep in &dependents[id] {
                                    skip_subtree(dep, &mut settled, &mut n_settled, &mut skipped);
                                }
                            }
                        }
                        (ctx.sink)(Event::Progress {
                            completed: n_settled,
                            total,
                        });
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            drop(task_tx); // ends the workers' recv loops
        })
        .expect("engine worker pool");

        // Collect records in plan (node-id) order for deterministic output.
        let mut records = Vec::new();
        let outputs = ctx.outputs.into_inner().expect("outputs lock");
        let mut ids: Vec<usize> = outputs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if let Some(NodeOutput::Record(r)) = outputs.get(&id) {
                records.push((**r).clone());
            }
        }

        let stats_after = self.cache.stats();
        SweepResult {
            records,
            cancelled: run_token.is_cancelled(),
            skipped,
            failures,
            cache: CacheStats {
                hits: stats_after.hits - stats_before.hits,
                misses: stats_after.misses - stats_before.misses,
            },
        }
    }
}

/// Fetches a dependency's output (present by construction: the dispatcher
/// only releases a node once all dependencies have settled successfully).
fn dep_output(ctx: &ExecCtx<'_>, id: usize) -> NodeOutput {
    ctx.outputs
        .lock()
        .expect("outputs lock")
        .get(&id)
        .cloned()
        .expect("dependency output missing")
}

/// Executes one stage, emitting its events. Runs on a worker thread.
fn run_stage(node: &StageNode, ctx: &ExecCtx<'_>, token: &CancelToken) -> StageResult {
    if token.is_cancelled() {
        return StageResult::Cancelled;
    }
    (ctx.sink)(Event::StageStarted {
        node: node.id,
        stage: node.kind,
        label: node.label.clone(),
    });
    let start = Instant::now();
    let finished = |output_items: usize| Event::StageFinished {
        node: node.id,
        stage: node.kind,
        label: node.label.clone(),
        secs: start.elapsed().as_secs_f64(),
        output_items,
    };

    match node.kind {
        StageKind::Load => {
            let fp = graph_fingerprint(&ctx.input.graph);
            (ctx.sink)(finished(ctx.input.graph.n_nodes()));
            StageResult::Done(NodeOutput::Fingerprint(fp))
        }
        StageKind::Symmetrize => {
            let NodeOutput::Fingerprint(fp) = dep_output(ctx, node.deps[0]) else {
                return StageResult::Failed("load artifact has wrong type".into());
            };
            let method = node.method.expect("symmetrize node has a method");
            let (stage_name, params) = method.cache_params();
            let key = stage_key(fp, stage_name, &params);
            match ctx.cache.get_or_compute(key, || {
                method.symmetrize_cancellable(&ctx.input.graph, token)
            }) {
                Ok((sym, hit)) => {
                    if hit {
                        (ctx.sink)(Event::CacheHit {
                            node: node.id,
                            stage: node.kind,
                            label: node.label.clone(),
                            key,
                        });
                    } else {
                        (ctx.sink)(finished(sym.n_edges()));
                    }
                    StageResult::Done(NodeOutput::Sym(sym))
                }
                Err(e) if e.is_cancelled() => StageResult::Cancelled,
                Err(e) => StageResult::Failed(e.to_string()),
            }
        }
        StageKind::Prune => {
            let NodeOutput::Sym(sym) = dep_output(ctx, node.deps[0]) else {
                return StageResult::Failed("prune input has wrong type".into());
            };
            if token.is_cancelled() {
                return StageResult::Cancelled;
            }
            // Threshold appears as the stage parameter; the input is
            // addressed by its exact matrix content.
            let threshold = node.prune_threshold.expect("prune node has a threshold");
            let key = stage_key(matrix_fingerprint(sym.adjacency()), "prune", &[threshold]);
            let compute = || -> Result<SymmetrizedGraph, String> {
                let (pruned, _dropped) = ops::prune(sym.adjacency(), threshold);
                let mut un = UnGraph::from_symmetric_unchecked(pruned);
                if let Some(labels) = sym.graph().labels() {
                    un = un.with_labels(labels.to_vec()).map_err(|e| e.to_string())?;
                }
                Ok(SymmetrizedGraph::new(
                    un,
                    sym.method().to_string(),
                    threshold,
                    sym.elapsed() + start.elapsed(),
                ))
            };
            match ctx.cache.get_or_compute(key, compute) {
                Ok((pruned, hit)) => {
                    if hit {
                        (ctx.sink)(Event::CacheHit {
                            node: node.id,
                            stage: node.kind,
                            label: node.label.clone(),
                            key,
                        });
                    } else {
                        (ctx.sink)(finished(pruned.n_edges()));
                    }
                    StageResult::Done(NodeOutput::Sym(pruned))
                }
                Err(e) => StageResult::Failed(e),
            }
        }
        StageKind::Cluster => {
            let NodeOutput::Sym(sym) = dep_output(ctx, node.deps[0]) else {
                return StageResult::Failed("cluster input has wrong type".into());
            };
            let clusterer = node.clusterer.expect("cluster node has a clusterer");
            match clusterer.cluster_cancellable(sym.graph(), token) {
                Ok(clustering) => {
                    let secs = start.elapsed().as_secs_f64();
                    (ctx.sink)(finished(clustering.n_clusters()));
                    StageResult::Done(NodeOutput::Clustered {
                        clustering: Arc::new(clustering),
                        secs,
                        sym,
                    })
                }
                Err(e) if e.is_cancelled() => StageResult::Cancelled,
                Err(e) => StageResult::Failed(e.to_string()),
            }
        }
        StageKind::Evaluate => {
            let NodeOutput::Clustered {
                clustering,
                secs,
                sym,
            } = dep_output(ctx, node.deps[0])
            else {
                return StageResult::Failed("evaluate input has wrong type".into());
            };
            let method = node.method.expect("evaluate node has a method");
            let clusterer = node.clusterer.expect("evaluate node has a clusterer");
            let f_score = ctx
                .input
                .truth
                .as_deref()
                .map(|t| avg_f_score(clustering.assignments(), t).avg_f);
            let record = RunRecord {
                dataset: ctx.input.name.clone(),
                symmetrization: method.name(),
                algorithm: clusterer.name().to_string(),
                n_clusters: clustering.n_clusters(),
                f_score,
                cluster_secs: secs,
                symmetrize_secs: sym.elapsed().as_secs_f64(),
                sym_edges: sym.n_edges(),
            };
            (ctx.sink)(finished(1));
            StageResult::Done(NodeOutput::Record(Box::new(record)))
        }
    }
}

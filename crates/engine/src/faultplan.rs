//! Shared fault-schedule plumbing for deterministic I/O fault injection.
//!
//! [`faultpoint`](crate::faultpoint) (feature-gated) answers "what should
//! *this named stage* do when it fires"; this module answers the lower-level
//! scheduling question the store's `FaultFs` shim and the `symclust chaos`
//! harness share: *which* numbered filesystem operation misbehaves, *how*,
//! and with what seeded randomness — without any process-local RNG or clock,
//! so a schedule is reproducible from its textual spec alone.
//!
//! A [`FaultSpec`] round-trips through a compact `key=value;key=value`
//! string (the `SYMCLUST_FAULTFS` environment variable): the harness
//! [`render`](FaultSpec::render)s one per chaos cycle and hands it to the
//! daemon child process, whose shim [`parse`](FaultSpec::parse)s it back.
//! Derived quantities — torn-write prefix lengths, per-cycle fault family
//! choices — come from [`mix`], a SplitMix64-style bit mixer, so both sides
//! agree on every byte without communicating beyond the spec.
//!
//! This module is always compiled (it is plain data and arithmetic and
//! injects nothing by itself); only the store's shim behavior sits behind
//! the `fault-injection` feature.

use std::fmt;

/// The error kind an [`FaultSpec::err_at`] operation fails with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultErrno {
    /// `EIO` (raw OS error 5): a generic device-level I/O failure.
    Eio,
    /// `ENOSPC` (raw OS error 28): the disk is full.
    Enospc,
}

impl FaultErrno {
    /// The raw OS error number to construct the injected `io::Error` from.
    pub fn raw_os_error(self) -> i32 {
        match self {
            FaultErrno::Eio => 5,
            FaultErrno::Enospc => 28,
        }
    }

    /// The spec-string token (`eio` / `enospc`).
    pub fn token(self) -> &'static str {
        match self {
            FaultErrno::Eio => "eio",
            FaultErrno::Enospc => "enospc",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "eio" => Ok(FaultErrno::Eio),
            "enospc" => Ok(FaultErrno::Enospc),
            other => Err(format!("unknown errno token {other:?} (want eio|enospc)")),
        }
    }
}

impl fmt::Display for FaultErrno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A deterministic schedule of filesystem faults, keyed by the global
/// operation counter the `FaultFs` shim maintains (every mediated syscall
/// increments it by one, so "operation `K`" names the same syscall in every
/// run of the same workload).
///
/// All fields are optional and compose; an empty spec injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for derived quantities (torn-write prefix lengths via [`mix`]).
    pub seed: u64,
    /// Abort the process at operation `K` — after writing a seeded prefix
    /// of the data for write-type operations (a torn write), immediately
    /// for everything else (a crash at the syscall boundary).
    pub crash_at: Option<u64>,
    /// Fail operation `K` once with the given errno (covers `EIO`,
    /// one-shot `ENOSPC`, and rename failure — whichever syscall `K` is).
    pub err_at: Option<(u64, FaultErrno)>,
    /// From operation `K` onward, every *mutating* operation fails with
    /// `ENOSPC` — a persistently full disk. Reads keep succeeding, which
    /// is exactly the regime the store's degraded mode serves.
    pub enospc_after: Option<u64>,
    /// Read operation `K` returns a seeded prefix of the file instead of
    /// its full contents (a short read; checksums catch it downstream).
    pub short_read_at: Option<u64>,
}

impl FaultSpec {
    /// Whether the spec injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.crash_at.is_none()
            && self.err_at.is_none()
            && self.enospc_after.is_none()
            && self.short_read_at.is_none()
    }

    /// Renders the spec as the `key=value;…` string [`parse`](Self::parse)
    /// accepts (stable field order, so render∘parse is the identity).
    pub fn render(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        if let Some(k) = self.crash_at {
            parts.push(format!("crash-at={k}"));
        }
        if let Some((k, e)) = self.err_at {
            parts.push(format!("err-at={k}:{e}"));
        }
        if let Some(k) = self.enospc_after {
            parts.push(format!("enospc-after={k}"));
        }
        if let Some(k) = self.short_read_at {
            parts.push(format!("short-read-at={k}"));
        }
        parts.join(";")
    }

    /// Parses a `key=value;…` spec string. Unknown keys are errors (a
    /// typo that silently disables a fault would make a chaos run lie).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for part in s.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed fault spec part {part:?} (want key=value)"))?;
            let int = |v: &str| -> Result<u64, String> {
                v.parse::<u64>()
                    .map_err(|e| format!("bad integer {v:?} for {key}: {e}"))
            };
            match key {
                "seed" => spec.seed = int(value)?,
                "crash-at" => spec.crash_at = Some(int(value)?),
                "enospc-after" => spec.enospc_after = Some(int(value)?),
                "short-read-at" => spec.short_read_at = Some(int(value)?),
                "err-at" => {
                    let (op, errno) = value.split_once(':').ok_or_else(|| {
                        format!("malformed err-at value {value:?} (want K:eio|K:enospc)")
                    })?;
                    spec.err_at = Some((int(op)?, FaultErrno::parse(errno)?));
                }
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(spec)
    }

    /// The torn-write prefix length for a write of `len` bytes at
    /// operation `op`: a seeded value in `0..len` (strictly short, so a
    /// torn write is always observable as a truncation when `len > 0`).
    pub fn torn_prefix_len(&self, op: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (mix(self.seed ^ 0x746f_726e, op) % len as u64) as usize
    }
}

/// SplitMix64 bit mixer over `(seed, n)`: deterministic, well-distributed,
/// and free of process state — the one source of "randomness" the fault
/// schedule machinery is allowed (see the `cache-key-purity` lint).
pub fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(n)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrips() {
        let specs = [
            FaultSpec::default(),
            FaultSpec {
                seed: 42,
                crash_at: Some(17),
                ..FaultSpec::default()
            },
            FaultSpec {
                seed: 7,
                err_at: Some((3, FaultErrno::Eio)),
                enospc_after: Some(90),
                short_read_at: Some(12),
                ..FaultSpec::default()
            },
            FaultSpec {
                seed: 0,
                err_at: Some((0, FaultErrno::Enospc)),
                ..FaultSpec::default()
            },
        ];
        for spec in specs {
            let text = spec.render();
            assert_eq!(
                FaultSpec::parse(&text),
                Ok(spec),
                "roundtrip failed for {text:?}"
            );
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("crash-at").is_err(), "missing value");
        assert!(FaultSpec::parse("crash-at=x").is_err(), "non-integer");
        assert!(FaultSpec::parse("err-at=3").is_err(), "missing errno");
        assert!(FaultSpec::parse("err-at=3:ebadf").is_err(), "unknown errno");
        assert!(FaultSpec::parse("frobnicate=1").is_err(), "unknown key");
    }

    #[test]
    fn parse_tolerates_whitespace_and_empty_parts() {
        let spec = FaultSpec::parse(" seed=9 ; crash-at=4 ;; ").unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.crash_at, Some(4));
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
        assert_ne!(mix(1, 2), mix(2, 2));
        // Torn prefixes stay strictly shorter than the write.
        let spec = FaultSpec {
            seed: 5,
            ..FaultSpec::default()
        };
        for op in 0..64 {
            let len = spec.torn_prefix_len(op, 10);
            assert!(len < 10);
        }
        assert_eq!(spec.torn_prefix_len(3, 0), 0);
    }
}

#![warn(missing_docs)]

//! symclust-engine: a concurrent pipeline engine for the symmetrize →
//! cluster → evaluate workflow.
//!
//! The engine models an experiment sweep as an explicit DAG of typed
//! stages (load → symmetrize → \[prune →\] cluster → evaluate) executed
//! by a worker pool over bounded channels, with:
//!
//! * a content-addressed in-memory artifact cache
//!   ([`cache::ArtifactCache`], keyed by [`fingerprint`]), so the four
//!   symmetrizations of a sweep are computed exactly once no matter how
//!   many clusterers or parameter settings consume them;
//! * cooperative cancellation and per-stage deadlines
//!   ([`symclust_sparse::CancelToken`]), checked at stage boundaries and
//!   inside the long-running kernels (SpGEMM, R-MCL);
//! * a structured event stream ([`event::Event`]: stage started/finished,
//!   cache hits, progress, cancellations) that the CLI renders live and
//!   the bench harness serializes to JSONL.
//!
//! Entry point: build an [`Engine`], describe the sweep with a
//! [`PipelineSpec`], and call [`Engine::run`]:
//!
//! ```
//! use symclust_engine::{Clusterer, Engine, PipelineInput, PipelineSpec, SymMethod};
//! use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};
//!
//! let g = shared_link_dsbm(&SharedLinkDsbmConfig {
//!     n_nodes: 300, n_clusters: 6, seed: 1, ..Default::default()
//! }).unwrap();
//! let input = PipelineInput::new("demo", g.graph, Some(g.truth));
//! let spec = PipelineSpec {
//!     methods: SymMethod::lineup(0.0, 0.0),
//!     clusterers: vec![Clusterer::Metis { k: 6 }],
//!     extra_prune: None,
//! };
//! let engine = Engine::default();
//! let result = engine.run(&input, &spec, &|_event| {});
//! assert_eq!(result.records.len(), 4);           // one record per method
//! assert_eq!(engine.cache_stats().misses, 4);    // each symmetrization computed once
//! ```

pub mod cache;
pub mod event;
pub mod exec;
pub mod faultplan;
#[cfg(feature = "fault-injection")]
pub mod faultpoint;
pub mod fingerprint;
pub mod journal;
pub mod json;
pub mod plan;
pub mod report;
pub mod spec;

pub use cache::{ArtifactCache, CacheStats};
pub use event::{Event, StageKind};
pub use exec::{Engine, EngineOptions, PipelineInput, RetryPolicy, SweepResult};
pub use journal::RunJournal;
pub use plan::{PipelineSpec, Plan, StageNode};
pub use report::{measure, print_records, save_records, RunRecord};
pub use spec::{select_thresholds, Clusterer, SymMethod};

//! Structured progress events emitted by the pipeline executor.
//!
//! Every stage transition produces one [`Event`]. Consumers receive them
//! through the sink callback passed to [`crate::exec::Engine::run`]: the
//! CLI renders them live as human-readable lines, the bench harness
//! serializes them to JSON lines for offline inspection. The schema is
//! documented in DESIGN.md and kept deliberately flat (one object per
//! event, no nesting) so any JSONL tool can consume it.

use crate::json::JsonObject;

/// The typed stages of the pipeline DAG, in dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Fingerprint + admit the input directed graph.
    Load,
    /// Directed → undirected transformation (stage 1 of the paper).
    Symmetrize,
    /// Optional extra thresholding of the symmetrized graph (§3.5).
    Prune,
    /// Undirected clustering (stage 2 of the paper).
    Cluster,
    /// F-score against ground truth + record assembly.
    Evaluate,
}

impl StageKind {
    /// Stable lowercase name used in events and cache keys.
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::Load => "load",
            StageKind::Symmetrize => "symmetrize",
            StageKind::Prune => "prune",
            StageKind::Cluster => "cluster",
            StageKind::Evaluate => "evaluate",
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One pipeline progress event.
///
/// `node` identifies the DAG node (stable within one run); `label` is the
/// human-readable stage description (e.g. `"Degree-discounted"` or
/// `"MLR-MCL(i=2.0)"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A worker began executing the stage.
    StageStarted {
        /// DAG node id.
        node: usize,
        /// Stage type.
        stage: StageKind,
        /// Human-readable stage label.
        label: String,
    },
    /// The stage completed; `secs` is its wall time and `output_items`
    /// the size of what it produced (edges for symmetrize/prune, clusters
    /// for cluster, records for evaluate, nodes for load).
    StageFinished {
        /// DAG node id.
        node: usize,
        /// Stage type.
        stage: StageKind,
        /// Human-readable stage label.
        label: String,
        /// Wall-clock seconds spent in the stage.
        secs: f64,
        /// Output size (stage-dependent unit, see variant doc).
        output_items: usize,
    },
    /// The stage's artifact was served from the cache (possibly after
    /// waiting out another worker's in-flight computation of it).
    CacheHit {
        /// DAG node id.
        node: usize,
        /// Stage type.
        stage: StageKind,
        /// Human-readable stage label.
        label: String,
        /// Content-addressed cache key that hit.
        key: u64,
    },
    /// Sweep-level progress: `completed` of `total` DAG nodes settled.
    Progress {
        /// Nodes finished, failed, or skipped so far.
        completed: usize,
        /// Total nodes in the plan.
        total: usize,
    },
    /// The stage was skipped or aborted due to cancellation (explicit
    /// token, deadline, or an upstream dependency not completing).
    Cancelled {
        /// DAG node id.
        node: usize,
        /// Stage type.
        stage: StageKind,
        /// Human-readable stage label.
        label: String,
    },
    /// The stage failed with an error; dependents are skipped.
    StageFailed {
        /// DAG node id.
        node: usize,
        /// Stage type.
        stage: StageKind,
        /// Human-readable stage label.
        label: String,
        /// Error description.
        error: String,
        /// True when the failure was a caught panic (isolated by the
        /// engine; sibling stages keep running).
        panic: bool,
    },
    /// A transiently-failed stage is about to be re-attempted after a
    /// backoff delay.
    StageRetrying {
        /// DAG node id.
        node: usize,
        /// Stage type.
        stage: StageKind,
        /// Human-readable stage label.
        label: String,
        /// The attempt that just failed (1-based).
        attempt: usize,
        /// Total attempts the retry policy allows.
        max_attempts: usize,
        /// Backoff delay before the next attempt, in milliseconds.
        delay_ms: u64,
        /// The transient error that triggered the retry.
        error: String,
    },
    /// The stage was skipped because a run journal proves an identical
    /// chain (same input fingerprint + parameters) already completed in an
    /// earlier run; its record is reused without re-execution.
    StageResumed {
        /// DAG node id.
        node: usize,
        /// Stage type.
        stage: StageKind,
        /// Human-readable stage label.
        label: String,
        /// Content-addressed chain key found in the journal.
        key: u64,
    },
    /// End-of-run metrics snapshot: every counter, gauge, span, and
    /// histogram the sweep recorded (DESIGN.md §11). Emitted exactly once,
    /// after the last stage settles.
    MetricsSnapshot {
        /// The snapshot, taken after the worker pool drained.
        snapshot: symclust_obs::MetricsSnapshot,
    },
}

impl Event {
    /// Event type tag used in the JSON serialization.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::StageStarted { .. } => "stage_started",
            Event::StageFinished { .. } => "stage_finished",
            Event::CacheHit { .. } => "cache_hit",
            Event::Progress { .. } => "progress",
            Event::Cancelled { .. } => "cancelled",
            Event::StageFailed { .. } => "stage_failed",
            Event::StageRetrying { .. } => "stage_retrying",
            Event::StageResumed { .. } => "stage_resumed",
            Event::MetricsSnapshot { .. } => "metrics_snapshot",
        }
    }

    /// One JSON object on a single line (JSONL-ready). Schema:
    /// `{"event": tag, ...variant fields}`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.string("event", self.tag());
        match self {
            Event::StageStarted { node, stage, label } => {
                obj.number("node", *node as f64);
                obj.string("stage", stage.name());
                obj.string("label", label);
            }
            Event::StageFinished {
                node,
                stage,
                label,
                secs,
                output_items,
            } => {
                obj.number("node", *node as f64);
                obj.string("stage", stage.name());
                obj.string("label", label);
                obj.number("secs", *secs);
                obj.number("output_items", *output_items as f64);
            }
            Event::CacheHit {
                node,
                stage,
                label,
                key,
            } => {
                obj.number("node", *node as f64);
                obj.string("stage", stage.name());
                obj.string("label", label);
                obj.string("key", &format!("{key:016x}"));
            }
            Event::Progress { completed, total } => {
                obj.number("completed", *completed as f64);
                obj.number("total", *total as f64);
            }
            Event::Cancelled { node, stage, label } => {
                obj.number("node", *node as f64);
                obj.string("stage", stage.name());
                obj.string("label", label);
            }
            Event::StageFailed {
                node,
                stage,
                label,
                error,
                panic,
            } => {
                obj.number("node", *node as f64);
                obj.string("stage", stage.name());
                obj.string("label", label);
                obj.string("error", error);
                obj.boolean("panic", *panic);
            }
            Event::StageRetrying {
                node,
                stage,
                label,
                attempt,
                max_attempts,
                delay_ms,
                error,
            } => {
                obj.number("node", *node as f64);
                obj.string("stage", stage.name());
                obj.string("label", label);
                obj.number("attempt", *attempt as f64);
                obj.number("max_attempts", *max_attempts as f64);
                obj.number("delay_ms", *delay_ms as f64);
                obj.string("error", error);
            }
            Event::StageResumed {
                node,
                stage,
                label,
                key,
            } => {
                obj.number("node", *node as f64);
                obj.string("stage", stage.name());
                obj.string("label", label);
                obj.string("key", &format!("{key:016x}"));
            }
            Event::MetricsSnapshot { snapshot } => {
                // The snapshot's own JSON is a flat object with the stable
                // §11 keys; embed it verbatim.
                obj.raw("metrics", &snapshot.to_json());
            }
        }
        obj.finish()
    }

    /// A one-line human rendering used by the CLI's live display.
    pub fn render(&self) -> String {
        match self {
            Event::StageStarted { stage, label, .. } => {
                format!("[{stage:>10}] {label} ...")
            }
            Event::StageFinished {
                stage,
                label,
                secs,
                output_items,
                ..
            } => format!("[{stage:>10}] {label} done in {secs:.3}s ({output_items} items)"),
            Event::CacheHit { stage, label, .. } => {
                format!("[{stage:>10}] {label} (cached)")
            }
            Event::Progress { completed, total } => {
                format!("[  progress] {completed}/{total} stages")
            }
            Event::Cancelled { stage, label, .. } => {
                format!("[{stage:>10}] {label} CANCELLED")
            }
            Event::StageFailed {
                stage,
                label,
                error,
                panic,
                ..
            } => {
                let kind = if *panic { "PANICKED" } else { "FAILED" };
                format!("[{stage:>10}] {label} {kind}: {error}")
            }
            Event::StageRetrying {
                stage,
                label,
                attempt,
                max_attempts,
                delay_ms,
                ..
            } => {
                format!("[{stage:>10}] {label} retrying ({attempt}/{max_attempts}) in {delay_ms}ms")
            }
            Event::StageResumed { stage, label, .. } => {
                format!("[{stage:>10}] {label} (resumed from journal)")
            }
            Event::MetricsSnapshot { snapshot } => {
                format!(
                    "[   metrics] {} counters, {} gauges, {} spans",
                    snapshot.counters.len(),
                    snapshot.gauges.len(),
                    snapshot.spans.len()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(StageKind::Symmetrize.name(), "symmetrize");
        assert_eq!(StageKind::Evaluate.to_string(), "evaluate");
    }

    #[test]
    fn json_schema_has_event_tag_and_fields() {
        let e = Event::StageFinished {
            node: 3,
            stage: StageKind::Cluster,
            label: "MLR-MCL".into(),
            secs: 0.25,
            output_items: 17,
        };
        let j = e.to_json();
        assert!(j.starts_with("{\"event\":\"stage_finished\""), "{j}");
        assert!(j.contains("\"stage\":\"cluster\""), "{j}");
        assert!(j.contains("\"output_items\":17"), "{j}");
    }

    #[test]
    fn cache_key_serializes_as_hex_string() {
        let e = Event::CacheHit {
            node: 0,
            stage: StageKind::Symmetrize,
            label: "Bibliometric".into(),
            key: 0xdead_beef,
        };
        assert!(e.to_json().contains("\"key\":\"00000000deadbeef\""));
    }

    #[test]
    fn render_is_single_line() {
        let e = Event::Progress {
            completed: 2,
            total: 9,
        };
        assert!(!e.render().contains('\n'));
        assert!(e.render().contains("2/9"));
    }

    #[test]
    fn failed_event_carries_panic_flag() {
        let e = Event::StageFailed {
            node: 1,
            stage: StageKind::Symmetrize,
            label: "Bibliometric".into(),
            error: "boom".into(),
            panic: true,
        };
        let j = e.to_json();
        assert!(j.contains("\"event\":\"stage_failed\""), "{j}");
        assert!(j.contains("\"panic\":true"), "{j}");
        assert!(e.render().contains("PANICKED"));
    }

    #[test]
    fn retrying_event_serializes_backoff_fields() {
        let e = Event::StageRetrying {
            node: 2,
            stage: StageKind::Cluster,
            label: "MLR-MCL(i=2)".into(),
            attempt: 1,
            max_attempts: 3,
            delay_ms: 50,
            error: "transient: injected".into(),
        };
        let j = e.to_json();
        assert_eq!(e.tag(), "stage_retrying");
        assert!(j.contains("\"attempt\":1"), "{j}");
        assert!(j.contains("\"delay_ms\":50"), "{j}");
        assert!(e.render().contains("retrying (1/3)"));
    }

    #[test]
    fn metrics_snapshot_event_embeds_flat_object() {
        let m = symclust_obs::MetricsRegistry::new();
        m.counter("spgemm.flops").add(42);
        let e = Event::MetricsSnapshot {
            snapshot: m.snapshot(),
        };
        assert_eq!(e.tag(), "metrics_snapshot");
        let j = e.to_json();
        assert!(j.starts_with("{\"event\":\"metrics_snapshot\""), "{j}");
        assert!(j.contains("\"counter.spgemm.flops\":42"), "{j}");
        assert!(e.render().contains("1 counters"));
    }

    #[test]
    fn resumed_event_carries_chain_key() {
        let e = Event::StageResumed {
            node: 4,
            stage: StageKind::Evaluate,
            label: "A+A' + Metis(k=3)".into(),
            key: 0xabcd,
        };
        assert_eq!(e.tag(), "stage_resumed");
        assert!(e.to_json().contains("\"key\":\"000000000000abcd\""));
        assert!(e.render().contains("resumed"));
    }
}

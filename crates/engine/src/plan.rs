//! Pipeline plans: the explicit DAG of typed stages executed by the
//! engine.
//!
//! A plan for a sweep over `M` symmetrization methods and `C` clusterers
//! contains one shared `Load` node, and per (method, clusterer) pair an
//! independent `Symmetrize → [Prune →] Cluster → Evaluate` chain hanging
//! off it. Symmetrize nodes are deliberately *per pair*, not per method:
//! deduplication is the artifact cache's job (content-addressed by graph
//! fingerprint + method parameters), which also dedupes across separate
//! plans sharing one engine. The DAG's role is ordering and concurrency,
//! not memoization.

use crate::event::StageKind;
use crate::spec::{Clusterer, SymMethod};

/// One node of the pipeline DAG.
#[derive(Debug, Clone)]
pub struct StageNode {
    /// Node id == index into [`Plan::nodes`].
    pub id: usize,
    /// The typed stage this node executes.
    pub kind: StageKind,
    /// Human-readable label for events.
    pub label: String,
    /// Ids of nodes whose artifacts this node consumes.
    pub deps: Vec<usize>,
    /// The symmetrization method (set on Symmetrize/Prune/Cluster/Evaluate
    /// nodes; carried downstream for record assembly).
    pub method: Option<SymMethod>,
    /// The clusterer (set on Cluster/Evaluate nodes).
    pub clusterer: Option<Clusterer>,
    /// The extra prune threshold (set on Prune nodes only).
    pub prune_threshold: Option<f64>,
}

/// Declarative description of a sweep: which methods × which clusterers,
/// with an optional extra prune pass between them.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Stage-1 methods to sweep.
    pub methods: Vec<SymMethod>,
    /// Stage-2 clusterers to sweep.
    pub clusterers: Vec<Clusterer>,
    /// When set, insert a `Prune` stage thresholding each symmetrized
    /// graph at this value before clustering (§3.5 post-hoc sparsification).
    pub extra_prune: Option<f64>,
}

/// A fully-built DAG ready for execution.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Nodes in id order. Dependencies always point to lower ids, so id
    /// order is a valid topological order.
    pub nodes: Vec<StageNode>,
}

impl Plan {
    /// Builds the DAG for a spec. Node 0 is always the shared Load node.
    pub fn build(spec: &PipelineSpec) -> Plan {
        let mut nodes = Vec::new();
        nodes.push(StageNode {
            id: 0,
            kind: StageKind::Load,
            label: "input graph".to_string(),
            deps: vec![],
            method: None,
            clusterer: None,
            prune_threshold: None,
        });
        for &method in &spec.methods {
            for &clusterer in &spec.clusterers {
                let sym_id = nodes.len();
                nodes.push(StageNode {
                    id: sym_id,
                    kind: StageKind::Symmetrize,
                    label: method.name(),
                    deps: vec![0],
                    method: Some(method),
                    clusterer: None,
                    prune_threshold: None,
                });
                let mut upstream = sym_id;
                if let Some(t) = spec.extra_prune {
                    let prune_id = nodes.len();
                    nodes.push(StageNode {
                        id: prune_id,
                        kind: StageKind::Prune,
                        label: format!("{} @ {t}", method.name()),
                        deps: vec![sym_id],
                        method: Some(method),
                        clusterer: None,
                        prune_threshold: Some(t),
                    });
                    upstream = prune_id;
                }
                let cluster_id = nodes.len();
                nodes.push(StageNode {
                    id: cluster_id,
                    kind: StageKind::Cluster,
                    label: format!("{} + {}", method.name(), clusterer.label()),
                    deps: vec![upstream],
                    method: Some(method),
                    clusterer: Some(clusterer),
                    prune_threshold: None,
                });
                nodes.push(StageNode {
                    id: cluster_id + 1,
                    kind: StageKind::Evaluate,
                    label: format!("{} + {}", method.name(), clusterer.label()),
                    deps: vec![cluster_id],
                    method: Some(method),
                    clusterer: Some(clusterer),
                    prune_threshold: None,
                });
            }
        }
        Plan { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan is empty (it never is — Load is always present).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// In-degree of every node (dependencies not yet satisfied at start).
    pub fn indegrees(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.deps.len()).collect()
    }

    /// Reverse adjacency: for each node, who depends on it.
    pub fn dependents(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for &d in &n.deps {
                out[d].push(n.id);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(extra_prune: Option<f64>) -> PipelineSpec {
        PipelineSpec {
            methods: SymMethod::lineup(0.0, 0.0),
            clusterers: vec![
                Clusterer::MlrMcl { inflation: 2.0 },
                Clusterer::Metis { k: 5 },
            ],
            extra_prune,
        }
    }

    #[test]
    fn node_counts_match_sweep_size() {
        // 1 load + 4×2 × (sym + cluster + eval) = 25.
        let plan = Plan::build(&spec(None));
        assert_eq!(plan.len(), 25);
        // With prune: 1 + 8 × 4 = 33.
        let plan = Plan::build(&spec(Some(1.0)));
        assert_eq!(plan.len(), 33);
        assert!(!plan.is_empty());
    }

    #[test]
    fn ids_are_topological() {
        let plan = Plan::build(&spec(Some(0.5)));
        for n in &plan.nodes {
            assert_eq!(n.id, plan.nodes.iter().position(|m| m.id == n.id).unwrap());
            for &d in &n.deps {
                assert!(d < n.id, "dep {d} does not precede node {}", n.id);
            }
        }
    }

    #[test]
    fn load_fans_out_to_every_symmetrize_node() {
        let plan = Plan::build(&spec(None));
        let deps_on_load = plan.dependents()[0].len();
        assert_eq!(deps_on_load, 8); // 4 methods × 2 clusterers
        let indeg = plan.indegrees();
        assert_eq!(indeg[0], 0);
        assert!(indeg.iter().skip(1).all(|&d| d == 1));
    }

    #[test]
    fn evaluate_nodes_carry_method_and_clusterer() {
        let plan = Plan::build(&spec(None));
        for n in &plan.nodes {
            match n.kind {
                StageKind::Evaluate | StageKind::Cluster => {
                    assert!(n.method.is_some() && n.clusterer.is_some());
                }
                StageKind::Symmetrize => {
                    assert!(n.method.is_some() && n.clusterer.is_none());
                }
                _ => {}
            }
        }
    }
}

//! The single factory for symmetrization methods and clusterers used by
//! every harness (engine, bench, CLI).
//!
//! Before the engine existed, the bench runner and the CLI each built
//! `Symmetrizer`/`ClusterAlgorithm` instances from their own match
//! statements. This module is now the one place that maps a declarative
//! [`SymMethod`]/[`Clusterer`] value to a configured algorithm; both
//! construction paths and the cache-key encoding live next to each other
//! so they cannot drift apart.

use symclust_cluster::{ClusterAlgorithm, Clustering, GraclusLike, MetisLike, MlrMcl};
use symclust_core::{
    Bibliometric, BibliometricOptions, DegreeDiscounted, DegreeDiscountedOptions, DiscountExponent,
    PlusTranspose, RandomWalk, SymmetrizedGraph, Symmetrizer,
};
use symclust_graph::{DiGraph, UnGraph};
use symclust_sparse::CancelToken;

/// The four symmetrization methods compared throughout the paper, with the
/// thresholds that make the similarity methods tractable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SymMethod {
    /// `U = A + Aᵀ` (§3.1).
    PlusTranspose,
    /// `U = (ΠP + PᵀΠ)/2` (§3.2).
    RandomWalk,
    /// `U = AAᵀ + AᵀA`, pruned at `threshold` (§3.3).
    Bibliometric {
        /// Prune threshold (Table 2 column).
        threshold: f64,
    },
    /// Eq. 8 with discount exponents and threshold (§3.4).
    DegreeDiscounted {
        /// Out-degree exponent α.
        alpha: f64,
        /// In-degree exponent β.
        beta: f64,
        /// Prune threshold.
        threshold: f64,
    },
}

impl SymMethod {
    /// The paper's four-method lineup with the given similarity thresholds.
    pub fn lineup(bib_threshold: f64, dd_threshold: f64) -> Vec<SymMethod> {
        vec![
            SymMethod::DegreeDiscounted {
                alpha: 0.5,
                beta: 0.5,
                threshold: dd_threshold,
            },
            SymMethod::Bibliometric {
                threshold: bib_threshold,
            },
            SymMethod::PlusTranspose,
            SymMethod::RandomWalk,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            SymMethod::PlusTranspose => "A+A'".into(),
            SymMethod::RandomWalk => "Random Walk".into(),
            SymMethod::Bibliometric { .. } => "Bibliometric".into(),
            SymMethod::DegreeDiscounted { .. } => "Degree-discounted".into(),
        }
    }

    /// Builds the configured symmetrizer.
    pub fn build(&self) -> Box<dyn Symmetrizer + Send + Sync> {
        self.build_with_budget(None)
    }

    /// Builds the configured symmetrizer under an optional SpGEMM output
    /// budget (in stored entries). The budget only affects the similarity
    /// methods ([`uses_budget`](Self::uses_budget)); when their estimated
    /// product size exceeds it they degrade to an adaptively-thresholded
    /// product instead of aborting.
    pub fn build_with_budget(
        &self,
        nnz_budget: Option<usize>,
    ) -> Box<dyn Symmetrizer + Send + Sync> {
        self.build_configured(nnz_budget, None, None, None)
    }

    /// Builds the configured symmetrizer under an optional SpGEMM output
    /// budget, an optional thread-count override and an optional
    /// accumulator-strategy override for the similarity kernels. `None`
    /// keeps the option defaults (which honor `SYMCLUST_THREADS` /
    /// `SYMCLUST_ACCUM`). Neither knob changes the output — the parallel
    /// kernels assemble blocks deterministically and the accumulator
    /// strategies are bit-identical — so both are deliberately *not* part
    /// of [`cache_params`](Self::cache_params). The same holds for
    /// `spgemm_panel`: the out-of-core panel path is bit-identical to the
    /// in-memory one, so the plan never enters the artifact address.
    pub fn build_configured(
        &self,
        nnz_budget: Option<usize>,
        spgemm_threads: Option<usize>,
        spgemm_accum: Option<symclust_sparse::AccumStrategy>,
        spgemm_panel: Option<symclust_sparse::PanelPlan>,
    ) -> Box<dyn Symmetrizer + Send + Sync> {
        match *self {
            SymMethod::PlusTranspose => Box::new(PlusTranspose),
            SymMethod::RandomWalk => Box::new(RandomWalk::default()),
            SymMethod::Bibliometric { threshold } => {
                let mut options = BibliometricOptions {
                    threshold,
                    nnz_budget,
                    ..Default::default()
                };
                if let Some(t) = spgemm_threads {
                    options.n_threads = t;
                }
                if let Some(a) = spgemm_accum {
                    options.accum = a;
                }
                if let Some(p) = spgemm_panel {
                    options.panel = p;
                }
                Box::new(Bibliometric { options })
            }
            SymMethod::DegreeDiscounted {
                alpha,
                beta,
                threshold,
            } => {
                let mut options = DegreeDiscountedOptions {
                    alpha: DiscountExponent::Power(alpha),
                    beta: DiscountExponent::Power(beta),
                    threshold,
                    nnz_budget,
                    ..Default::default()
                };
                if let Some(t) = spgemm_threads {
                    options.n_threads = t;
                }
                if let Some(a) = spgemm_accum {
                    options.accum = a;
                }
                if let Some(p) = spgemm_panel {
                    options.panel = p;
                }
                Box::new(DegreeDiscounted { options })
            }
        }
    }

    /// Whether an SpGEMM memory budget changes this method's output (only
    /// the similarity methods run a matrix product).
    pub fn uses_budget(&self) -> bool {
        matches!(
            self,
            SymMethod::Bibliometric { .. } | SymMethod::DegreeDiscounted { .. }
        )
    }

    /// Runs the symmetrization (panics on error — valid for the in-memory
    /// graphs the harnesses use; the engine path uses
    /// [`symmetrize_cancellable`](Self::symmetrize_cancellable) instead).
    pub fn symmetrize(&self, g: &DiGraph) -> SymmetrizedGraph {
        self.build()
            .symmetrize(g)
            .expect("symmetrization cannot fail on a valid graph")
    }

    /// Runs the symmetrization with cooperative cancellation.
    pub fn symmetrize_cancellable(
        &self,
        g: &DiGraph,
        token: &CancelToken,
    ) -> symclust_core::Result<SymmetrizedGraph> {
        self.build().symmetrize_cancellable(g, token)
    }

    /// [`symmetrize_cancellable`](Self::symmetrize_cancellable) under an
    /// optional SpGEMM output budget.
    pub fn symmetrize_cancellable_with_budget(
        &self,
        g: &DiGraph,
        token: &CancelToken,
        nnz_budget: Option<usize>,
    ) -> symclust_core::Result<SymmetrizedGraph> {
        self.build_with_budget(nnz_budget)
            .symmetrize_cancellable(g, token)
    }

    /// [`symmetrize_cancellable_with_budget`](Self::symmetrize_cancellable_with_budget)
    /// that also records kernel counters (SpGEMM work, degraded fallbacks —
    /// DESIGN.md §11) into `metrics`.
    pub fn symmetrize_observed_with_budget(
        &self,
        g: &DiGraph,
        token: &CancelToken,
        nnz_budget: Option<usize>,
        metrics: Option<&symclust_obs::MetricsRegistry>,
    ) -> symclust_core::Result<SymmetrizedGraph> {
        self.symmetrize_observed_configured(g, token, nnz_budget, None, None, None, metrics)
    }

    /// [`symmetrize_observed_with_budget`](Self::symmetrize_observed_with_budget)
    /// with explicit SpGEMM thread-count, accumulator-strategy and
    /// out-of-core panel-plan overrides (the engine threads the pipeline's
    /// `--sym-threads` / `--sym-accum` / `--sym-panel-rows` knobs through
    /// here). None of these affect the output, only wall time and peak
    /// memory.
    #[allow(clippy::too_many_arguments)]
    pub fn symmetrize_observed_configured(
        &self,
        g: &DiGraph,
        token: &CancelToken,
        nnz_budget: Option<usize>,
        spgemm_threads: Option<usize>,
        spgemm_accum: Option<symclust_sparse::AccumStrategy>,
        spgemm_panel: Option<symclust_sparse::PanelPlan>,
        metrics: Option<&symclust_obs::MetricsRegistry>,
    ) -> symclust_core::Result<SymmetrizedGraph> {
        self.build_configured(nnz_budget, spgemm_threads, spgemm_accum, spgemm_panel)
            .symmetrize_observed(g, token, metrics)
    }

    /// Stable (stage name, parameter vector) encoding for content-addressed
    /// cache keys. Everything that affects the output must appear here.
    pub fn cache_params(&self) -> (&'static str, Vec<f64>) {
        match *self {
            SymMethod::PlusTranspose => ("symmetrize/aat", vec![]),
            SymMethod::RandomWalk => ("symmetrize/rw", vec![]),
            SymMethod::Bibliometric { threshold } => ("symmetrize/bib", vec![threshold]),
            SymMethod::DegreeDiscounted {
                alpha,
                beta,
                threshold,
            } => ("symmetrize/dd", vec![alpha, beta, threshold]),
        }
    }

    /// [`cache_params`](Self::cache_params) including an effective SpGEMM
    /// budget when one applies. A budgeted product can differ from the
    /// exact one (it may degrade), so the budget must be part of the
    /// artifact address — otherwise a degraded artifact computed under a
    /// tight budget would be served to a consumer expecting the exact one.
    pub fn cache_params_with_budget(&self, nnz_budget: Option<usize>) -> (&'static str, Vec<f64>) {
        let (name, mut params) = self.cache_params();
        if let Some(b) = nnz_budget {
            if self.uses_budget() {
                params.push(b as f64);
            }
        }
        (name, params)
    }
}

/// Selects prune thresholds for Bibliometric and Degree-discounted on a
/// graph so both symmetrized graphs land near `target_avg_degree`
/// (the paper's §5.3.1 recipe; Table 2 chooses thresholds per dataset).
/// Returns `(bib_threshold, dd_threshold)`.
pub fn select_thresholds(g: &DiGraph, target_avg_degree: f64) -> (f64, f64) {
    let sample = 120.min(g.n_nodes());
    let dd = symclust_core::select_threshold(
        g,
        &DegreeDiscountedOptions::default(),
        target_avg_degree,
        sample,
        0xBEEF,
    )
    .expect("threshold selection succeeds")
    .threshold;
    // Bibliometric = Degree-discounted with α = β = 0 (plus the +I step).
    let bib_opts = DegreeDiscountedOptions {
        alpha: DiscountExponent::Power(0.0),
        beta: DiscountExponent::Power(0.0),
        add_identity: true,
        ..Default::default()
    };
    let bib = symclust_core::select_threshold(g, &bib_opts, target_avg_degree, sample, 0xBEEF)
        .expect("threshold selection succeeds")
        .threshold;
    (bib, dd)
}

/// The stage-2 clusterers used in the sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Clusterer {
    /// MLR-MCL at a given inflation (cluster count is implicit).
    MlrMcl {
        /// Inflation parameter.
        inflation: f64,
    },
    /// Metis-like at a given k.
    Metis {
        /// Number of parts.
        k: usize,
    },
    /// Graclus-like at a given k.
    Graclus {
        /// Number of clusters.
        k: usize,
    },
}

impl Clusterer {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Clusterer::MlrMcl { .. } => "MLR-MCL",
            Clusterer::Metis { .. } => "Metis",
            Clusterer::Graclus { .. } => "Graclus",
        }
    }

    /// Display name including the granularity parameter, for event labels.
    pub fn label(&self) -> String {
        match self {
            Clusterer::MlrMcl { inflation } => format!("MLR-MCL(i={inflation})"),
            Clusterer::Metis { k } => format!("Metis(k={k})"),
            Clusterer::Graclus { k } => format!("Graclus(k={k})"),
        }
    }

    /// Builds the configured clustering algorithm.
    pub fn build(&self) -> Box<dyn ClusterAlgorithm + Send + Sync> {
        match *self {
            Clusterer::MlrMcl { inflation } => Box::new(MlrMcl::with_inflation(inflation)),
            Clusterer::Metis { k } => Box::new(MetisLike::with_k(k)),
            Clusterer::Graclus { k } => Box::new(GraclusLike::with_k(k)),
        }
    }

    /// Runs the clusterer on a symmetrized graph (panics on error; the
    /// engine path uses [`cluster_cancellable`](Self::cluster_cancellable)).
    pub fn run(&self, sym: &SymmetrizedGraph) -> Clustering {
        self.build()
            .cluster_ungraph(sym.graph())
            .expect("clustering succeeds")
    }

    /// Runs the clusterer with cooperative cancellation.
    pub fn cluster_cancellable(
        &self,
        g: &UnGraph,
        token: &CancelToken,
    ) -> symclust_cluster::Result<Clustering> {
        self.build().cluster_ungraph_cancellable(g, token)
    }

    /// [`cluster_cancellable`](Self::cluster_cancellable) that also records
    /// algorithm counters (R-MCL iterations, convergence — DESIGN.md §11)
    /// into `metrics`.
    pub fn cluster_observed(
        &self,
        g: &UnGraph,
        token: &CancelToken,
        metrics: Option<&symclust_obs::MetricsRegistry>,
    ) -> symclust_cluster::Result<Clustering> {
        self.build().cluster_observed(g, token, metrics)
    }

    /// Stable (stage name, parameter vector) encoding, mirroring
    /// [`SymMethod::cache_params`]. Used to compose the per-chain journal
    /// keys for crash-safe resume.
    pub fn cache_params(&self) -> (&'static str, Vec<f64>) {
        match *self {
            Clusterer::MlrMcl { inflation } => ("cluster/mlrmcl", vec![inflation]),
            Clusterer::Metis { k } => ("cluster/metis", vec![k as f64]),
            Clusterer::Graclus { k } => ("cluster/graclus", vec![k as f64]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::figure1_graph;

    #[test]
    fn lineup_has_four_methods() {
        let lineup = SymMethod::lineup(5.0, 0.01);
        assert_eq!(lineup.len(), 4);
        let names: Vec<String> = lineup.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"Degree-discounted".to_string()));
        assert!(names.contains(&"A+A'".to_string()));
    }

    #[test]
    fn built_symmetrizer_matches_direct_construction() {
        let g = figure1_graph();
        let via_factory = SymMethod::DegreeDiscounted {
            alpha: 0.5,
            beta: 0.5,
            threshold: 0.0,
        }
        .symmetrize(&g);
        let direct = DegreeDiscounted::default().symmetrize(&g).unwrap();
        assert_eq!(via_factory.adjacency(), direct.adjacency());
    }

    #[test]
    fn cache_params_distinguish_methods_and_parameters() {
        let a = SymMethod::Bibliometric { threshold: 1.0 }.cache_params();
        let b = SymMethod::Bibliometric { threshold: 2.0 }.cache_params();
        assert_eq!(a.0, b.0);
        assert_ne!(a.1, b.1);
        let dd = SymMethod::DegreeDiscounted {
            alpha: 0.5,
            beta: 0.5,
            threshold: 0.0,
        }
        .cache_params();
        assert_ne!(a.0, dd.0);
        assert_eq!(dd.1, vec![0.5, 0.5, 0.0]);
    }

    #[test]
    fn budget_extends_cache_params_only_for_similarity_methods() {
        let bib = SymMethod::Bibliometric { threshold: 1.0 };
        let plain = bib.cache_params_with_budget(None);
        let tight = bib.cache_params_with_budget(Some(1000));
        assert_eq!(plain, bib.cache_params());
        assert_ne!(plain.1, tight.1, "budget must change the artifact address");
        // A+A' ignores the budget entirely: no SpGEMM, same key either way.
        let aat = SymMethod::PlusTranspose;
        assert!(!aat.uses_budget());
        assert_eq!(aat.cache_params_with_budget(Some(1000)), aat.cache_params());
    }

    #[test]
    fn clusterer_cache_params_distinguish_algorithms_and_k() {
        let a = Clusterer::Metis { k: 3 }.cache_params();
        let b = Clusterer::Metis { k: 4 }.cache_params();
        let c = Clusterer::Graclus { k: 3 }.cache_params();
        assert_eq!(a.0, b.0);
        assert_ne!(a.1, b.1);
        assert_ne!(a.0, c.0);
        assert_eq!(
            Clusterer::MlrMcl { inflation: 2.0 }.cache_params(),
            ("cluster/mlrmcl", vec![2.0])
        );
    }

    #[test]
    fn clusterer_names_and_labels() {
        assert_eq!(Clusterer::MlrMcl { inflation: 2.0 }.name(), "MLR-MCL");
        assert_eq!(Clusterer::Metis { k: 3 }.label(), "Metis(k=3)");
        assert_eq!(Clusterer::Graclus { k: 3 }.name(), "Graclus");
    }

    #[test]
    fn cancelled_token_propagates_through_factory() {
        let g = figure1_graph();
        let token = CancelToken::new();
        token.cancel();
        let err = SymMethod::PlusTranspose
            .symmetrize_cancellable(&g, &token)
            .unwrap_err();
        assert!(err.is_cancelled());
        let sym = SymMethod::PlusTranspose.symmetrize(&g);
        let err = Clusterer::MlrMcl { inflation: 2.0 }
            .cluster_cancellable(sym.graph(), &token)
            .unwrap_err();
        assert!(err.is_cancelled());
    }
}

//! End-to-end engine tests: cache semantics across a sweep, F-score
//! parity with the serial reference path, and cancellation surfacing
//! partial results.

use std::sync::Mutex;
use symclust_engine::{
    measure, Clusterer, Engine, EngineOptions, Event, PipelineInput, PipelineSpec, StageKind,
    SymMethod,
};
use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};
use symclust_sparse::CancelToken;

fn small_input() -> PipelineInput {
    let g = shared_link_dsbm(&SharedLinkDsbmConfig {
        n_nodes: 300,
        n_clusters: 10,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    PipelineInput::new("dsbm300", g.graph, Some(g.truth))
}

fn four_by_two_spec() -> PipelineSpec {
    PipelineSpec {
        methods: SymMethod::lineup(0.0, 0.0),
        clusterers: vec![
            Clusterer::MlrMcl { inflation: 2.0 },
            Clusterer::Metis { k: 10 },
        ],
        extra_prune: None,
    }
}

/// The acceptance scenario: a 4-method × 2-clusterer sweep issues 8
/// symmetrize stages but performs exactly 4 symmetrization computations —
/// the other 4 are cache hits — and the parallel engine's F-scores match
/// the serial reference path exactly.
#[test]
fn four_by_two_sweep_computes_each_symmetrization_once_and_matches_serial() {
    let input = small_input();
    let spec = four_by_two_spec();
    let engine = Engine::new(EngineOptions {
        threads: 4,
        ..Default::default()
    });
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let result = engine.run(&input, &spec, &|e| events.lock().unwrap().push(e));

    assert!(
        result.failures.is_empty(),
        "failures: {:?}",
        result.failures
    );
    assert!(!result.cancelled);
    assert_eq!(result.records.len(), 8);

    // Exactly 4 computations, 4 hits — the cache carried every repeat.
    assert_eq!(result.cache.misses, 4, "each method computes exactly once");
    assert_eq!(
        result.cache.hits, 4,
        "the second consumer of each method hits"
    );
    let events = events.into_inner().unwrap();
    let cache_hits = events
        .iter()
        .filter(|e| matches!(e, Event::CacheHit { .. }))
        .count();
    assert_eq!(cache_hits, 4);
    let sym_finished = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                Event::StageFinished {
                    stage: StageKind::Symmetrize,
                    ..
                }
            )
        })
        .count();
    assert_eq!(sym_finished, 4);

    // Deterministic parity with the serial path: every (method, clusterer)
    // pair's F-score and cluster count must match a fresh serial run.
    let truth = input.truth.as_deref();
    for method in &spec.methods {
        let sym = method.symmetrize(&input.graph);
        for &clusterer in &spec.clusterers {
            let serial = measure(&input.name, method, &sym, clusterer, truth);
            let parallel = result
                .records
                .iter()
                .find(|r| {
                    r.symmetrization == serial.symmetrization && r.algorithm == serial.algorithm
                })
                .unwrap_or_else(|| panic!("missing record for {}", method.name()));
            assert_eq!(parallel.f_score, serial.f_score, "{}", method.name());
            assert_eq!(parallel.n_clusters, serial.n_clusters, "{}", method.name());
            assert_eq!(parallel.sym_edges, serial.sym_edges, "{}", method.name());
        }
    }

    // Records come back in plan order (method-major).
    let order: Vec<&str> = result
        .records
        .iter()
        .map(|r| r.symmetrization.as_str())
        .collect();
    assert_eq!(
        order,
        vec![
            "Degree-discounted",
            "Degree-discounted",
            "Bibliometric",
            "Bibliometric",
            "A+A'",
            "A+A'",
            "Random Walk",
            "Random Walk",
        ]
    );
}

/// Two sweeps on one engine share the cache: the second sweep re-uses all
/// four symmetrizations (pure hits, zero new computations).
#[test]
fn second_sweep_on_same_engine_is_all_cache_hits() {
    let input = small_input();
    let spec = PipelineSpec {
        methods: SymMethod::lineup(0.0, 0.0),
        clusterers: vec![Clusterer::Metis { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::new(EngineOptions {
        threads: 2,
        ..Default::default()
    });
    let first = engine.run(&input, &spec, &|_| {});
    assert_eq!(first.cache.misses, 4);
    // Sweep a different clusterer: same methods, so zero recomputation.
    let spec2 = PipelineSpec {
        clusterers: vec![Clusterer::Graclus { k: 10 }],
        ..spec
    };
    let second = engine.run(&input, &spec2, &|_| {});
    assert_eq!(second.cache.misses, 0, "second sweep recomputed");
    assert_eq!(second.cache.hits, 4);
    assert_eq!(second.records.len(), 4);
}

/// Cancelling mid-sweep keeps the records of chains that already finished
/// and marks the rest skipped — partial results, not an all-or-nothing
/// failure.
#[test]
fn cancellation_surfaces_partial_results() {
    let input = small_input();
    let spec = four_by_two_spec();
    // Single worker => strictly serial chain completion; cancel as soon
    // as the first record lands.
    let engine = Engine::new(EngineOptions {
        threads: 1,
        ..Default::default()
    });
    let token = CancelToken::new();
    let sink_token = token.clone();
    let result = engine.run_cancellable(&input, &spec, &token, &|e| {
        if matches!(
            e,
            Event::StageFinished {
                stage: StageKind::Evaluate,
                ..
            }
        ) {
            sink_token.cancel();
        }
    });
    assert!(result.cancelled);
    assert!(
        !result.records.is_empty(),
        "completed records must survive cancellation"
    );
    assert!(
        result.records.len() < 8,
        "cancellation should have cut the sweep short"
    );
    assert!(result.skipped > 0);
    assert!(result.failures.is_empty());
}

/// A token cancelled before the run starts yields an empty, fully-skipped
/// result without executing anything.
#[test]
fn pre_cancelled_token_skips_everything() {
    let input = small_input();
    let spec = four_by_two_spec();
    let engine = Engine::default();
    let token = CancelToken::new();
    token.cancel();
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let result = engine.run_cancellable(&input, &spec, &token, &|e| events.lock().unwrap().push(e));
    assert!(result.cancelled);
    assert!(result.records.is_empty());
    assert_eq!(result.skipped, 25); // 1 load + 8 × 3 stages
    assert_eq!(engine.cache_stats().misses, 0, "no work should have run");
    let events = events.into_inner().unwrap();
    assert!(events.iter().all(|e| matches!(
        e,
        Event::Cancelled { .. } | Event::Progress { .. } | Event::MetricsSnapshot { .. }
    )));
}

/// An already-expired per-stage deadline cancels every stage promptly but
/// does NOT mark the sweep as externally cancelled; the engine still
/// settles all nodes.
#[test]
fn zero_stage_deadline_skips_all_stages() {
    let input = small_input();
    let spec = PipelineSpec {
        methods: vec![SymMethod::PlusTranspose],
        clusterers: vec![Clusterer::Metis { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::new(EngineOptions {
        threads: 2,
        stage_deadline: Some(std::time::Duration::ZERO),
        ..Default::default()
    });
    let result = engine.run(&input, &spec, &|_| {});
    assert!(!result.cancelled, "run token never tripped");
    assert!(result.records.is_empty());
    assert!(result.skipped > 0);
}

/// The optional prune stage thresholds the symmetrized graph before
/// clustering and is itself cached.
#[test]
fn extra_prune_stage_reduces_edges() {
    let input = small_input();
    let base = PipelineSpec {
        methods: vec![SymMethod::Bibliometric { threshold: 0.0 }],
        clusterers: vec![Clusterer::Metis { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::default();
    let unpruned = engine.run(&input, &base, &|_| {});
    let pruned_spec = PipelineSpec {
        extra_prune: Some(2.0),
        ..base
    };
    let pruned = engine.run(&input, &pruned_spec, &|_| {});
    assert!(unpruned.failures.is_empty() && pruned.failures.is_empty());
    let before = unpruned.records[0].sym_edges;
    let after = pruned.records[0].sym_edges;
    assert!(
        after < before,
        "prune at 2.0 should drop weight-1 pairs ({after} !< {before})"
    );
}

fn temp_journal(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("symclust_engine_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

/// Crash-safe resume, full-sweep case: a second run against the journal of
/// a completed sweep re-executes zero stages — every chain is pre-settled
/// from the journal, no symmetrization or clustering starts, and the
/// records match the first run's exactly.
#[test]
fn journal_resume_skips_every_completed_chain() {
    let input = small_input();
    let spec = four_by_two_spec();
    let path = temp_journal("full_resume.jsonl");
    let opts = EngineOptions {
        threads: 2,
        journal: Some(path.clone()),
        ..Default::default()
    };
    let first = Engine::new(opts.clone()).run(&input, &spec, &|_| {});
    assert!(first.failures.is_empty(), "{:?}", first.failures);
    assert_eq!(first.records.len(), 8);
    assert_eq!(first.resumed, 0);

    // Fresh engine = empty artifact cache, so any re-execution would show
    // up as a cache miss. Same journal = everything resumes.
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let second = Engine::new(opts).run(&input, &spec, &|e| events.lock().unwrap().push(e));
    assert_eq!(second.resumed, 8);
    assert_eq!(second.records.len(), 8);
    assert_eq!(second.cache.misses, 0, "resume must not recompute anything");
    assert_eq!(second.cache.hits, 0);

    let events = events.into_inner().unwrap();
    assert!(
        !events.iter().any(|e| matches!(
            e,
            Event::StageStarted { stage, .. } if *stage != StageKind::Load
        )),
        "no stage beyond Load may start on a fully-journaled sweep"
    );
    let resumed_events = events
        .iter()
        .filter(|e| matches!(e, Event::StageResumed { .. }))
        .count();
    assert_eq!(resumed_events, 8 * 3, "sym+cluster+eval per chain");

    for (a, b) in first.records.iter().zip(&second.records) {
        assert_eq!(a.symmetrization, b.symmetrization);
        assert_eq!(a.algorithm, b.algorithm);
        assert_eq!(a.f_score, b.f_score);
        assert_eq!(a.n_clusters, b.n_clusters);
    }
    std::fs::remove_file(&path).ok();
}

/// Crash-safe resume, kill-mid-sweep case: cancel a journaled sweep after
/// a couple of records land, then re-run with the same journal — the
/// completed chains resume, only the rest execute, and the sweep finishes.
#[test]
fn killed_sweep_resumes_completed_chains_and_finishes_the_rest() {
    let input = small_input();
    let spec = four_by_two_spec();
    let path = temp_journal("partial_resume.jsonl");
    let opts = EngineOptions {
        threads: 1,
        journal: Some(path.clone()),
        ..Default::default()
    };
    let token = CancelToken::new();
    let sink_token = token.clone();
    let evals_done = Mutex::new(0usize);
    let first = Engine::new(opts.clone()).run_cancellable(&input, &spec, &token, &|e| {
        if matches!(
            e,
            Event::StageFinished {
                stage: StageKind::Evaluate,
                ..
            }
        ) {
            let mut n = evals_done.lock().unwrap();
            *n += 1;
            if *n >= 2 {
                sink_token.cancel();
            }
        }
    });
    assert!(first.cancelled);
    let done = first.records.len();
    assert!(
        (2..8).contains(&done),
        "expected a partial sweep, got {done}"
    );

    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let second = Engine::new(opts).run(&input, &spec, &|e| events.lock().unwrap().push(e));
    assert!(!second.cancelled);
    assert_eq!(second.resumed, done, "every journaled chain must resume");
    assert_eq!(second.records.len(), 8, "the rest of the sweep completes");
    assert!(second.failures.is_empty(), "{:?}", second.failures);

    let events = events.into_inner().unwrap();
    let evals_executed = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                Event::StageFinished {
                    stage: StageKind::Evaluate,
                    ..
                }
            )
        })
        .count();
    assert_eq!(evals_executed, 8 - done, "resumed chains re-executed work");
    std::fs::remove_file(&path).ok();
}

/// An over-budget similarity symmetrization degrades (thresholded SpGEMM)
/// instead of aborting, and the degradation is visible in the record; a
/// generous budget stays exact.
#[test]
fn memory_budget_degrades_similarity_methods_instead_of_aborting() {
    let input = small_input();
    let spec = PipelineSpec {
        methods: vec![
            SymMethod::Bibliometric { threshold: 0.0 },
            SymMethod::PlusTranspose,
        ],
        clusterers: vec![Clusterer::Metis { k: 10 }],
        extra_prune: None,
    };
    let tight = Engine::new(EngineOptions {
        threads: 2,
        memory_budget: Some(100),
        ..Default::default()
    });
    let result = tight.run(&input, &spec, &|_| {});
    assert!(result.failures.is_empty(), "{:?}", result.failures);
    assert_eq!(result.records.len(), 2);
    let bib = result
        .records
        .iter()
        .find(|r| r.symmetrization == "Bibliometric")
        .unwrap();
    assert!(bib.degraded, "tight budget must degrade the SpGEMM");
    assert!(bib.sym_edges > 0, "degraded output is still a usable graph");
    let aat = result
        .records
        .iter()
        .find(|r| r.symmetrization == "A+A'")
        .unwrap();
    assert!(!aat.degraded, "A+A' runs no SpGEMM and is never degraded");

    let generous = Engine::new(EngineOptions {
        threads: 2,
        memory_budget: Some(100_000_000),
        ..Default::default()
    });
    let exact = generous.run(&input, &spec, &|_| {});
    let bib_exact = exact
        .records
        .iter()
        .find(|r| r.symmetrization == "Bibliometric")
        .unwrap();
    assert!(!bib_exact.degraded);
    assert!(
        bib_exact.sym_edges >= bib.sym_edges,
        "degraded product must not be denser than the exact one"
    );
}

/// The end-of-run metrics snapshot covers every instrumented layer: SpGEMM
/// work counters from the similarity kernels, R-MCL iteration counters,
/// prune edge flow, per-stage spans, and engine-level cache counters.
#[test]
fn sweep_metrics_cover_kernels_stages_and_cache() {
    let input = small_input();
    let spec = PipelineSpec {
        methods: SymMethod::lineup(0.0, 0.0),
        clusterers: vec![
            Clusterer::MlrMcl { inflation: 2.0 },
            Clusterer::Metis { k: 10 },
        ],
        extra_prune: Some(0.5),
    };
    let engine = Engine::new(EngineOptions {
        threads: 2,
        ..Default::default()
    });
    let result = engine.run(&input, &spec, &|_| {});
    assert_eq!(result.records.len(), 8);

    let snap = &result.metrics;
    // Kernel layer: Bibliometric + Degree-discounted are one fused
    // two-term SYRK product each (DESIGN.md §12).
    assert!(snap.counter("spgemm.calls").unwrap_or(0) >= 2, "{snap:?}");
    assert_eq!(snap.counter("spgemm.syrk_calls"), Some(2), "{snap:?}");
    assert!(snap.counter("spgemm.flops").unwrap_or(0) > 0);
    assert!(snap.counter("spgemm.nnz_final").unwrap_or(0) > 0);
    // Cluster layer: MLR-MCL ran on each of the four symmetrizations.
    assert_eq!(snap.counter("mcl.runs"), Some(4));
    assert!(snap.counter("mcl.iterations").unwrap_or(0) >= 4);
    // Prune layer: four prune stages, each conserving edges_out <= edges_in.
    let edges_in = snap.counter("prune.edges_in").unwrap_or(0);
    let edges_out = snap.counter("prune.edges_out").unwrap_or(0);
    assert!(edges_in > 0 && edges_out <= edges_in);
    let survival = snap.gauge("prune.survival_ratio").unwrap();
    assert!((0.0..=1.0).contains(&survival));
    // Engine layer: cache counters mirror the sweep's cache stats, and
    // every stage kind got a span.
    assert_eq!(
        snap.counter("engine.cache_hits"),
        Some(result.cache.hits as u64)
    );
    assert_eq!(
        snap.counter("engine.cache_misses"),
        Some(result.cache.misses as u64)
    );
    assert!(snap.gauge("engine.queue_depth_hwm").unwrap() >= 1.0);
    for kind in ["load", "symmetrize", "prune", "cluster", "evaluate"] {
        let span = snap
            .span(&format!("stage.{kind}"))
            .unwrap_or_else(|| panic!("missing span stage.{kind}"));
        assert!(span.count > 0);
    }
    // Per-variant symmetrize spans: one computation per method.
    assert_eq!(snap.span("sym.Bibliometric").unwrap().count, 1);
}

/// Sharing one registry across sweeps accumulates, while the default gives
/// each sweep a fresh one.
#[test]
fn shared_registry_accumulates_across_sweeps() {
    let input = small_input();
    let spec = PipelineSpec {
        methods: vec![SymMethod::PlusTranspose],
        clusterers: vec![Clusterer::MlrMcl { inflation: 2.0 }],
        extra_prune: None,
    };
    let registry = symclust_obs::MetricsRegistry::new();
    let engine = Engine::new(EngineOptions {
        threads: 1,
        metrics: Some(registry.clone()),
        ..Default::default()
    });
    let first = engine.run(&input, &spec, &|_| {});
    let second = engine.run(&input, &spec, &|_| {});
    assert_eq!(first.metrics.counter("mcl.runs"), Some(1));
    assert_eq!(second.metrics.counter("mcl.runs"), Some(2), "cumulative");
    assert_eq!(registry.snapshot().counter("mcl.runs"), Some(2));
    // Second sweep's symmetrization was a cache hit; only the miss counted
    // a per-variant span.
    assert_eq!(second.metrics.span("sym.A+A'").unwrap().count, 1);

    let fresh = Engine::new(EngineOptions {
        threads: 1,
        ..Default::default()
    });
    let r = fresh.run(&input, &spec, &|_| {});
    assert_eq!(r.metrics.counter("mcl.runs"), Some(1), "private registry");
}

//! End-to-end engine tests: cache semantics across a sweep, F-score
//! parity with the serial reference path, and cancellation surfacing
//! partial results.

use std::sync::Mutex;
use symclust_engine::{
    measure, Clusterer, Engine, EngineOptions, Event, PipelineInput, PipelineSpec, StageKind,
    SymMethod,
};
use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};
use symclust_sparse::CancelToken;

fn small_input() -> PipelineInput {
    let g = shared_link_dsbm(&SharedLinkDsbmConfig {
        n_nodes: 300,
        n_clusters: 10,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    PipelineInput::new("dsbm300", g.graph, Some(g.truth))
}

fn four_by_two_spec() -> PipelineSpec {
    PipelineSpec {
        methods: SymMethod::lineup(0.0, 0.0),
        clusterers: vec![
            Clusterer::MlrMcl { inflation: 2.0 },
            Clusterer::Metis { k: 10 },
        ],
        extra_prune: None,
    }
}

/// The acceptance scenario: a 4-method × 2-clusterer sweep issues 8
/// symmetrize stages but performs exactly 4 symmetrization computations —
/// the other 4 are cache hits — and the parallel engine's F-scores match
/// the serial reference path exactly.
#[test]
fn four_by_two_sweep_computes_each_symmetrization_once_and_matches_serial() {
    let input = small_input();
    let spec = four_by_two_spec();
    let engine = Engine::new(EngineOptions {
        threads: 4,
        stage_deadline: None,
    });
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let result = engine.run(&input, &spec, &|e| events.lock().unwrap().push(e));

    assert!(
        result.failures.is_empty(),
        "failures: {:?}",
        result.failures
    );
    assert!(!result.cancelled);
    assert_eq!(result.records.len(), 8);

    // Exactly 4 computations, 4 hits — the cache carried every repeat.
    assert_eq!(result.cache.misses, 4, "each method computes exactly once");
    assert_eq!(
        result.cache.hits, 4,
        "the second consumer of each method hits"
    );
    let events = events.into_inner().unwrap();
    let cache_hits = events
        .iter()
        .filter(|e| matches!(e, Event::CacheHit { .. }))
        .count();
    assert_eq!(cache_hits, 4);
    let sym_finished = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                Event::StageFinished {
                    stage: StageKind::Symmetrize,
                    ..
                }
            )
        })
        .count();
    assert_eq!(sym_finished, 4);

    // Deterministic parity with the serial path: every (method, clusterer)
    // pair's F-score and cluster count must match a fresh serial run.
    let truth = input.truth.as_deref();
    for method in &spec.methods {
        let sym = method.symmetrize(&input.graph);
        for &clusterer in &spec.clusterers {
            let serial = measure(&input.name, method, &sym, clusterer, truth);
            let parallel = result
                .records
                .iter()
                .find(|r| {
                    r.symmetrization == serial.symmetrization && r.algorithm == serial.algorithm
                })
                .unwrap_or_else(|| panic!("missing record for {}", method.name()));
            assert_eq!(parallel.f_score, serial.f_score, "{}", method.name());
            assert_eq!(parallel.n_clusters, serial.n_clusters, "{}", method.name());
            assert_eq!(parallel.sym_edges, serial.sym_edges, "{}", method.name());
        }
    }

    // Records come back in plan order (method-major).
    let order: Vec<&str> = result
        .records
        .iter()
        .map(|r| r.symmetrization.as_str())
        .collect();
    assert_eq!(
        order,
        vec![
            "Degree-discounted",
            "Degree-discounted",
            "Bibliometric",
            "Bibliometric",
            "A+A'",
            "A+A'",
            "Random Walk",
            "Random Walk",
        ]
    );
}

/// Two sweeps on one engine share the cache: the second sweep re-uses all
/// four symmetrizations (pure hits, zero new computations).
#[test]
fn second_sweep_on_same_engine_is_all_cache_hits() {
    let input = small_input();
    let spec = PipelineSpec {
        methods: SymMethod::lineup(0.0, 0.0),
        clusterers: vec![Clusterer::Metis { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::new(EngineOptions {
        threads: 2,
        stage_deadline: None,
    });
    let first = engine.run(&input, &spec, &|_| {});
    assert_eq!(first.cache.misses, 4);
    // Sweep a different clusterer: same methods, so zero recomputation.
    let spec2 = PipelineSpec {
        clusterers: vec![Clusterer::Graclus { k: 10 }],
        ..spec
    };
    let second = engine.run(&input, &spec2, &|_| {});
    assert_eq!(second.cache.misses, 0, "second sweep recomputed");
    assert_eq!(second.cache.hits, 4);
    assert_eq!(second.records.len(), 4);
}

/// Cancelling mid-sweep keeps the records of chains that already finished
/// and marks the rest skipped — partial results, not an all-or-nothing
/// failure.
#[test]
fn cancellation_surfaces_partial_results() {
    let input = small_input();
    let spec = four_by_two_spec();
    // Single worker => strictly serial chain completion; cancel as soon
    // as the first record lands.
    let engine = Engine::new(EngineOptions {
        threads: 1,
        stage_deadline: None,
    });
    let token = CancelToken::new();
    let sink_token = token.clone();
    let result = engine.run_cancellable(&input, &spec, &token, &|e| {
        if matches!(
            e,
            Event::StageFinished {
                stage: StageKind::Evaluate,
                ..
            }
        ) {
            sink_token.cancel();
        }
    });
    assert!(result.cancelled);
    assert!(
        !result.records.is_empty(),
        "completed records must survive cancellation"
    );
    assert!(
        result.records.len() < 8,
        "cancellation should have cut the sweep short"
    );
    assert!(result.skipped > 0);
    assert!(result.failures.is_empty());
}

/// A token cancelled before the run starts yields an empty, fully-skipped
/// result without executing anything.
#[test]
fn pre_cancelled_token_skips_everything() {
    let input = small_input();
    let spec = four_by_two_spec();
    let engine = Engine::default();
    let token = CancelToken::new();
    token.cancel();
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let result = engine.run_cancellable(&input, &spec, &token, &|e| events.lock().unwrap().push(e));
    assert!(result.cancelled);
    assert!(result.records.is_empty());
    assert_eq!(result.skipped, 25); // 1 load + 8 × 3 stages
    assert_eq!(engine.cache_stats().misses, 0, "no work should have run");
    let events = events.into_inner().unwrap();
    assert!(events
        .iter()
        .all(|e| matches!(e, Event::Cancelled { .. } | Event::Progress { .. })));
}

/// An already-expired per-stage deadline cancels every stage promptly but
/// does NOT mark the sweep as externally cancelled; the engine still
/// settles all nodes.
#[test]
fn zero_stage_deadline_skips_all_stages() {
    let input = small_input();
    let spec = PipelineSpec {
        methods: vec![SymMethod::PlusTranspose],
        clusterers: vec![Clusterer::Metis { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::new(EngineOptions {
        threads: 2,
        stage_deadline: Some(std::time::Duration::ZERO),
    });
    let result = engine.run(&input, &spec, &|_| {});
    assert!(!result.cancelled, "run token never tripped");
    assert!(result.records.is_empty());
    assert!(result.skipped > 0);
}

/// The optional prune stage thresholds the symmetrized graph before
/// clustering and is itself cached.
#[test]
fn extra_prune_stage_reduces_edges() {
    let input = small_input();
    let base = PipelineSpec {
        methods: vec![SymMethod::Bibliometric { threshold: 0.0 }],
        clusterers: vec![Clusterer::Metis { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::default();
    let unpruned = engine.run(&input, &base, &|_| {});
    let pruned_spec = PipelineSpec {
        extra_prune: Some(2.0),
        ..base
    };
    let pruned = engine.run(&input, &pruned_spec, &|_| {});
    assert!(unpruned.failures.is_empty() && pruned.failures.is_empty());
    let before = unpruned.records[0].sym_edges;
    let after = pruned.records[0].sym_edges;
    assert!(
        after < before,
        "prune at 2.0 should drop weight-1 pairs ({after} !< {before})"
    );
}

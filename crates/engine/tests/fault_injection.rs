//! End-to-end recovery tests driven by the deterministic fault-injection
//! harness (`--features fault-injection`).
//!
//! Each test arms a named fault point, runs an ordinary sweep, and proves
//! the corresponding recovery path: panic isolation, retry with backoff,
//! and degraded-mode SpGEMM under simulated memory exhaustion.

#![cfg(feature = "fault-injection")]

use std::sync::{Mutex, MutexGuard, OnceLock};
use symclust_engine::faultpoint::{self, FaultAction};
use symclust_engine::{
    Clusterer, Engine, EngineOptions, Event, PipelineInput, PipelineSpec, RetryPolicy, StageKind,
    SymMethod,
};
use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};

/// The fault registry is process-global; scenarios must not interleave.
fn serialize() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn small_input() -> PipelineInput {
    let g = shared_link_dsbm(&SharedLinkDsbmConfig {
        n_nodes: 300,
        n_clusters: 10,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    PipelineInput::new("dsbm300", g.graph, Some(g.truth))
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_delay_ms: 5,
        max_delay_ms: 40,
    }
}

/// Acceptance: a panicking symmetrize kernel fails only its own chains —
/// the other six records complete, the failure is reported as a caught
/// panic, and the run is not cancelled.
#[test]
fn panicking_symmetrize_does_not_abort_sibling_chains() {
    let _gate = serialize();
    faultpoint::reset();
    faultpoint::arm("symmetrize:Bibliometric", FaultAction::Panic);

    let input = small_input();
    let spec = PipelineSpec {
        methods: SymMethod::lineup(0.0, 0.0),
        clusterers: vec![
            Clusterer::MlrMcl { inflation: 2.0 },
            Clusterer::Metis { k: 10 },
        ],
        extra_prune: None,
    };
    let engine = Engine::new(EngineOptions {
        threads: 4,
        ..Default::default()
    });
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let result = engine.run(&input, &spec, &|e| events.lock().unwrap().push(e));
    faultpoint::reset();

    assert!(!result.cancelled);
    assert_eq!(
        result.records.len(),
        6,
        "the six non-Bibliometric chains must complete"
    );
    assert!(result
        .records
        .iter()
        .all(|r| r.symmetrization != "Bibliometric"));
    assert_eq!(result.failures.len(), 2, "{:?}", result.failures);
    let events = events.into_inner().unwrap();
    let panic_failures: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::StageFailed {
                stage: StageKind::Symmetrize,
                label,
                error,
                panic,
                ..
            } => Some((label.clone(), error.clone(), *panic)),
            _ => None,
        })
        .collect();
    assert_eq!(panic_failures.len(), 2);
    for (label, error, panic) in panic_failures {
        assert_eq!(label, "Bibliometric");
        assert!(panic, "failure must be flagged as a caught panic");
        assert!(error.contains("injected panic"), "{error}");
    }
}

/// Acceptance: a transiently-failing stage succeeds after retries, with
/// one `stage_retrying` (backoff) event per failed attempt.
#[test]
fn transient_fault_recovers_after_backoff_retries() {
    let _gate = serialize();
    faultpoint::reset();
    faultpoint::arm(
        "cluster:A+A' + Metis(k=10)",
        FaultAction::Transient { failures: 2 },
    );

    let input = small_input();
    let spec = PipelineSpec {
        methods: vec![SymMethod::PlusTranspose],
        clusterers: vec![Clusterer::Metis { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::new(EngineOptions {
        threads: 2,
        retry: fast_retry(),
        ..Default::default()
    });
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let result = engine.run(&input, &spec, &|e| events.lock().unwrap().push(e));
    faultpoint::reset();

    assert!(result.failures.is_empty(), "{:?}", result.failures);
    assert_eq!(result.records.len(), 1, "third attempt must succeed");
    let events = events.into_inner().unwrap();
    let retries: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::StageRetrying {
                attempt,
                max_attempts,
                delay_ms,
                error,
                ..
            } => Some((*attempt, *max_attempts, *delay_ms, error.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(retries.len(), 2, "one retry event per failed attempt");
    assert_eq!(retries[0].0, 1);
    assert_eq!(retries[1].0, 2);
    for (attempt, max_attempts, delay_ms, error) in &retries {
        assert_eq!(*max_attempts, 3);
        assert!(*delay_ms > 0, "backoff delay must be positive");
        assert!(error.contains("transient"), "{error}");
        let _ = attempt;
    }
    // Exponential growth of the capped backoff base across attempts: the
    // attempt-2 delay is drawn from [base·2/2, base·2], attempt-1 from
    // [base/2, base]; with deterministic jitter both are reproducible.
    let policy = fast_retry();
    assert_eq!(retries[0].2, policy.delay_ms(2, 1));
    assert_eq!(retries[1].2, policy.delay_ms(2, 2));
}

/// A fault that keeps failing past the attempt budget fails the chain with
/// the transient error (not a panic), and siblings are unaffected.
#[test]
fn exhausted_retry_budget_fails_only_that_chain() {
    let _gate = serialize();
    faultpoint::reset();
    faultpoint::arm(
        "cluster:A+A' + Metis(k=10)",
        FaultAction::Transient { failures: 100 },
    );

    let input = small_input();
    let spec = PipelineSpec {
        methods: vec![SymMethod::PlusTranspose],
        clusterers: vec![Clusterer::Metis { k: 10 }, Clusterer::Graclus { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::new(EngineOptions {
        threads: 2,
        retry: fast_retry(),
        ..Default::default()
    });
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let result = engine.run(&input, &spec, &|e| events.lock().unwrap().push(e));
    faultpoint::reset();

    assert_eq!(result.records.len(), 1, "the Graclus chain still completes");
    assert_eq!(result.records[0].algorithm, "Graclus");
    assert_eq!(result.failures.len(), 1);
    assert!(result.failures[0].1.contains("transient"));
    let events = events.into_inner().unwrap();
    let final_failure = events
        .iter()
        .find_map(|e| match e {
            Event::StageFailed { panic, .. } => Some(*panic),
            _ => None,
        })
        .expect("a stage_failed event");
    assert!(!final_failure, "retry exhaustion is not a panic");
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, Event::StageRetrying { .. }))
            .count(),
        2,
        "max_attempts 3 = 2 retries"
    );
}

/// Acceptance: simulated memory exhaustion on the bibliometric SpGEMM
/// completes the chain in degraded mode (`degraded: true` in the record)
/// instead of failing, and does not poison the exact artifact for later
/// unbudgeted runs on the same engine.
#[test]
fn simulated_oom_degrades_bibliometric_spgemm() {
    let _gate = serialize();
    faultpoint::reset();
    faultpoint::arm("symmetrize:Bibliometric", FaultAction::Oom);

    let input = small_input();
    let spec = PipelineSpec {
        methods: vec![
            SymMethod::Bibliometric { threshold: 0.0 },
            SymMethod::PlusTranspose,
        ],
        clusterers: vec![Clusterer::Metis { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::new(EngineOptions {
        threads: 2,
        ..Default::default()
    });
    let degraded_run = engine.run(&input, &spec, &|_| {});
    faultpoint::reset();

    assert!(
        degraded_run.failures.is_empty(),
        "{:?}",
        degraded_run.failures
    );
    assert_eq!(degraded_run.records.len(), 2);
    let bib = degraded_run
        .records
        .iter()
        .find(|r| r.symmetrization == "Bibliometric")
        .unwrap();
    assert!(bib.degraded, "simulated OOM must force degraded SpGEMM");
    let aat = degraded_run
        .records
        .iter()
        .find(|r| r.symmetrization == "A+A'")
        .unwrap();
    assert!(!aat.degraded, "sibling method untouched by the fault");

    // Same engine, fault disarmed: the degraded artifact lives under a
    // budget-qualified cache key, so the exact product is computed fresh.
    let exact_run = engine.run(&input, &spec, &|_| {});
    let bib_exact = exact_run
        .records
        .iter()
        .find(|r| r.symmetrization == "Bibliometric")
        .unwrap();
    assert!(
        !bib_exact.degraded,
        "degraded artifact must not be served to an unbudgeted run"
    );
    assert!(bib_exact.sym_edges >= bib.sym_edges);
}

/// Acceptance (observability): the run's metrics snapshot reconciles
/// exactly with the structured event stream under fault injection — one
/// `engine.retries` count per `stage_retrying` event, and cache hit/miss
/// counters equal to both the sweep's cache stats and the `cache_hit`
/// event count.
#[test]
fn metrics_counters_match_event_sequence_under_faults() {
    let _gate = serialize();
    faultpoint::reset();
    faultpoint::arm(
        "cluster:A+A' + Metis(k=10)",
        FaultAction::Transient { failures: 2 },
    );

    let input = small_input();
    let spec = PipelineSpec {
        methods: vec![SymMethod::PlusTranspose, SymMethod::RandomWalk],
        clusterers: vec![Clusterer::Metis { k: 10 }, Clusterer::Graclus { k: 10 }],
        extra_prune: None,
    };
    let engine = Engine::new(EngineOptions {
        threads: 2,
        retry: fast_retry(),
        ..Default::default()
    });
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let result = engine.run(&input, &spec, &|e| events.lock().unwrap().push(e));
    faultpoint::reset();

    assert!(result.failures.is_empty(), "{:?}", result.failures);
    assert_eq!(
        result.records.len(),
        4,
        "both faulted attempts must recover"
    );
    let events = events.into_inner().unwrap();
    let retry_events = events
        .iter()
        .filter(|e| matches!(e, Event::StageRetrying { .. }))
        .count();
    assert_eq!(retry_events, 2, "armed fault fails exactly twice");
    let hit_events = events
        .iter()
        .filter(|e| matches!(e, Event::CacheHit { .. }))
        .count();

    let snap = &result.metrics;
    assert_eq!(snap.counter("engine.retries"), Some(retry_events as u64));
    assert_eq!(
        snap.counter("engine.cache_hits"),
        Some(result.cache.hits as u64)
    );
    assert_eq!(
        snap.counter("engine.cache_misses"),
        Some(result.cache.misses as u64)
    );
    assert_eq!(result.cache.hits, hit_events, "every hit emits an event");
    // 2 methods × 2 clusterers = 4 symmetrize stages over 2 distinct keys.
    assert_eq!(result.cache.misses, 2);
    assert_eq!(result.cache.hits, 2);
    // The snapshot in the result and the one on the event stream agree.
    let from_event = events
        .iter()
        .find_map(|e| match e {
            Event::MetricsSnapshot { snapshot } => Some(snapshot),
            _ => None,
        })
        .expect("run must end with a metrics snapshot");
    assert_eq!(from_event, snap);
}

//! The filesystem shim every disk-store I/O call goes through.
//!
//! In a normal build each function here is a zero-cost passthrough to
//! `std::fs`. Under the `fault-injection` cargo feature the shim also
//! consults a process-global, schedule-deterministic
//! [`FaultSpec`](symclust_engine::faultplan::FaultSpec): every mediated
//! syscall increments a global operation counter, and the spec names which
//! operation misbehaves and how — a torn write (seeded prefix, then
//! `abort()`), a short read, a one-shot `EIO`/`ENOSPC`, a persistently
//! full disk, or a plain crash at the syscall boundary. Because the
//! counter advances identically on every run of the same workload, "fault
//! at operation 17" names the same syscall every time; there is no RNG and
//! no clock anywhere in the schedule (see the `cache-key-purity` lint).
//!
//! The spec is armed either programmatically ([`arm`]/[`reset`], for unit
//! tests) or from the `SYMCLUST_FAULTFS` environment variable (for child
//! daemons spawned by the `symclust chaos` harness), parsed once on first
//! use. A malformed spec aborts the process loudly — a chaos run that
//! silently injected nothing would be worse than one that failed.
//!
//! `symclust-check` enforces (rule `store-faultfs`) that no other file in
//! `crates/store` touches `std::fs` directly, so a fault schedule really
//! does see *every* filesystem operation the store performs.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Whether this build can inject faults (`fault-injection` feature).
/// The chaos harness checks this and refuses to run a lying experiment.
pub const INJECTION_COMPILED: bool = cfg!(feature = "fault-injection");

/// Classifies a mediated syscall for the schedule: persistent `ENOSPC`
/// only hits mutating operations (a full disk still serves reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Mutate,
}

/// Reads a whole file (short-read injectable).
pub fn read(path: &Path) -> io::Result<Vec<u8>> {
    let verdict = gate(OpKind::Read, None)?;
    let bytes = fs::read(path)?;
    if let Some(op) = verdict {
        let keep = short_keep(op, bytes.len());
        return Ok(bytes[..keep].to_vec());
    }
    Ok(bytes)
}

/// Reads a whole file as UTF-8 (short-read injectable; the prefix is
/// clamped to a char boundary so the injected fault is "truncated", not
/// "undecodable", matching what a real short read of ASCII JSON yields).
pub fn read_to_string(path: &Path) -> io::Result<String> {
    let verdict = gate(OpKind::Read, None)?;
    let text = fs::read_to_string(path)?;
    if let Some(op) = verdict {
        let mut keep = short_keep(op, text.len());
        while keep > 0 && !text.is_char_boundary(keep) {
            keep -= 1;
        }
        return Ok(text[..keep].to_string());
    }
    Ok(text)
}

/// Creates/truncates `path` with `contents`, no fsync (torn-write
/// injectable: a crash here leaves a seeded prefix on disk).
pub fn write(path: &Path, contents: &[u8]) -> io::Result<()> {
    if let Some(keep) = gate(OpKind::Mutate, Some(contents.len()))? {
        torn_write_and_abort(path, &contents[..keep.min(contents.len())]);
    }
    fs::write(path, contents)
}

/// Creates `path`, writes `contents`, and fsyncs — the blob publication
/// write. Counts as three schedulable operations (create, write, fsync),
/// so a crash-point can land between any two of the real syscalls.
pub fn write_sync(path: &Path, contents: &[u8]) -> io::Result<()> {
    gate(OpKind::Mutate, None)?; // create
    let mut f = fs::File::create(path)?;
    if let Some(keep) = gate(OpKind::Mutate, Some(contents.len()))? {
        let _ = f.write_all(&contents[..keep.min(contents.len())]);
        let _ = f.sync_all();
        drop(f);
        std::process::abort();
    }
    f.write_all(contents)?;
    gate(OpKind::Mutate, None)?; // fsync
    f.sync_all()
}

/// Renames `from` to `to` (the atomic publication step).
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    gate(OpKind::Mutate, None)?;
    fs::rename(from, to)
}

/// Removes a file (eviction, temp sweep, quarantine fallback).
pub fn remove_file(path: &Path) -> io::Result<()> {
    gate(OpKind::Mutate, None)?;
    fs::remove_file(path)
}

/// Recursively creates a directory.
pub fn create_dir_all(path: &Path) -> io::Result<()> {
    gate(OpKind::Mutate, None)?;
    fs::create_dir_all(path)
}

/// Lists a directory.
pub fn read_dir(path: &Path) -> io::Result<fs::ReadDir> {
    gate(OpKind::Read, None)?;
    fs::read_dir(path)
}

/// Stats a file.
pub fn metadata(path: &Path) -> io::Result<fs::Metadata> {
    gate(OpKind::Read, None)?;
    fs::metadata(path)
}

/// Fsyncs a directory, making a completed rename inside it durable.
pub fn sync_dir(path: &Path) -> io::Result<()> {
    gate(OpKind::Mutate, None)?;
    fs::File::open(path)?.sync_all()
}

/// Writes `prefix` in place of the full payload, flushes it as far as the
/// OS, and aborts — the torn-write crash-point.
#[cfg(feature = "fault-injection")]
fn torn_write_and_abort(path: &Path, prefix: &[u8]) -> ! {
    let _ = fs::write(path, prefix);
    std::process::abort();
}

#[cfg(not(feature = "fault-injection"))]
fn torn_write_and_abort(_path: &Path, _prefix: &[u8]) -> ! {
    unreachable!("fault verdicts are never produced without the fault-injection feature")
}

/// Consults the armed schedule for the next operation. `Ok(None)` means
/// proceed normally; `Ok(Some(x))` means a prefix-length fault fired —
/// for mutating ops `x` is the torn-write prefix length (the caller
/// writes the prefix and aborts), for reads `x` is the operation number
/// (the caller derives the kept prefix from the actual content length via
/// [`short_keep`]); `Err` is an injected errno. Crashes without
/// associated data abort right here.
#[cfg(feature = "fault-injection")]
fn gate(kind: OpKind, data_len: Option<usize>) -> io::Result<Option<usize>> {
    injection::gate(kind, data_len)
}

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
fn gate(_kind: OpKind, _data_len: Option<usize>) -> io::Result<Option<usize>> {
    Ok(None)
}

/// The number of bytes a short read of operation `op` keeps out of `len`.
#[cfg(feature = "fault-injection")]
fn short_keep(op: usize, len: usize) -> usize {
    injection::short_keep(op, len)
}

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
fn short_keep(_op: usize, len: usize) -> usize {
    len
}

#[cfg(feature = "fault-injection")]
pub use injection::{arm, op_count, reset};

/// Serializes tests that arm the process-global schedule (shared with the
/// disk-store fault tests; armed schedules must never interleave).
#[cfg(all(test, feature = "fault-injection"))]
pub(crate) static FAULT_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(feature = "fault-injection")]
mod injection {
    use super::OpKind;
    use std::io;
    use std::sync::{Mutex, OnceLock, PoisonError};
    use symclust_engine::faultplan::FaultSpec;

    struct State {
        spec: Option<FaultSpec>,
        counter: u64,
    }

    fn state() -> &'static Mutex<State> {
        static STATE: OnceLock<Mutex<State>> = OnceLock::new();
        STATE.get_or_init(|| {
            let spec = match std::env::var("SYMCLUST_FAULTFS") {
                Ok(text) => match FaultSpec::parse(&text) {
                    Ok(spec) => Some(spec),
                    Err(e) => {
                        eprintln!("symclust-store: bad SYMCLUST_FAULTFS spec {text:?}: {e}");
                        std::process::abort();
                    }
                },
                Err(_) => None,
            };
            Mutex::new(State { spec, counter: 0 })
        })
    }

    fn lock() -> std::sync::MutexGuard<'static, State> {
        state().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms `spec` programmatically (unit tests), resetting the operation
    /// counter so schedules are relative to the arming point.
    pub fn arm(spec: FaultSpec) {
        let mut st = lock();
        st.spec = Some(spec);
        st.counter = 0;
    }

    /// Disarms any schedule (environment-derived or programmatic).
    pub fn reset() {
        let mut st = lock();
        st.spec = None;
        st.counter = 0;
    }

    /// The number of mediated operations seen since the last arm/reset
    /// (or process start). Lets tests discover schedule offsets instead
    /// of hard-coding them.
    pub fn op_count() -> u64 {
        lock().counter
    }

    pub(super) fn gate(kind: OpKind, data_len: Option<usize>) -> io::Result<Option<usize>> {
        let mut st = lock();
        let Some(spec) = st.spec else {
            return Ok(None);
        };
        let n = st.counter;
        st.counter += 1;
        drop(st);
        if spec.crash_at == Some(n) {
            match (kind, data_len) {
                // Torn write: the caller writes a seeded prefix, then aborts.
                (OpKind::Mutate, Some(len)) => return Ok(Some(spec.torn_prefix_len(n, len))),
                _ => std::process::abort(),
            }
        }
        if let Some((k, errno)) = spec.err_at {
            if k == n {
                return Err(io::Error::from_raw_os_error(errno.raw_os_error()));
            }
        }
        if let Some(k) = spec.enospc_after {
            if n >= k && kind == OpKind::Mutate {
                return Err(io::Error::from_raw_os_error(28));
            }
        }
        if let Some(k) = spec.short_read_at {
            if k == n && kind == OpKind::Read {
                // The caller derives the kept prefix from the actual
                // content length via `short_keep(n, len)`.
                return Ok(Some(n as usize));
            }
        }
        Ok(None)
    }

    /// Derives the kept-prefix length for a short read of operation `op`
    /// over `len` content bytes (seeded, strictly shorter when `len > 0`).
    pub(super) fn short_keep(op: usize, len: usize) -> usize {
        match lock().spec {
            Some(spec) => spec.torn_prefix_len(op as u64, len),
            None => len,
        }
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use symclust_engine::faultplan::{FaultErrno, FaultSpec};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_file(tag: &str) -> std::path::PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "symclust_faultfs_test_{}_{tag}_{n}",
            std::process::id()
        ))
    }

    #[test]
    fn err_at_fails_exactly_one_operation() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let path = temp_file("err_at");
        arm(FaultSpec {
            err_at: Some((1, FaultErrno::Eio)),
            ..FaultSpec::default()
        });
        write(&path, b"one").unwrap(); // op 0
        let err = write(&path, b"two").unwrap_err(); // op 1: injected
        assert_eq!(err.raw_os_error(), Some(5));
        write(&path, b"three").unwrap(); // op 2: back to normal
        assert_eq!(read(&path).unwrap(), b"three"); // op 3
        assert_eq!(op_count(), 4);
        reset();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn enospc_after_fails_mutations_but_not_reads() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let path = temp_file("enospc");
        arm(FaultSpec {
            enospc_after: Some(1),
            ..FaultSpec::default()
        });
        write(&path, b"before the disk filled").unwrap(); // op 0
        let err = write(&path, b"after").unwrap_err(); // op 1
        assert_eq!(err.raw_os_error(), Some(28));
        // Reads keep working on the full disk, and the old contents are
        // intact (the failed write never touched the file).
        assert_eq!(read(&path).unwrap(), b"before the disk filled");
        assert!(rename(&path, &temp_file("enospc2")).is_err());
        assert!(remove_file(&path).is_err());
        reset();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_read_returns_a_strict_prefix() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let path = temp_file("short_read");
        reset();
        write(&path, b"0123456789").unwrap();
        arm(FaultSpec {
            seed: 7,
            short_read_at: Some(0),
            ..FaultSpec::default()
        });
        let got = read(&path).unwrap();
        assert!(got.len() < 10, "short read not shortened: {got:?}");
        assert_eq!(&got[..], &b"0123456789"[..got.len()], "not a prefix");
        // Same schedule, same prefix: determinism.
        arm(FaultSpec {
            seed: 7,
            short_read_at: Some(0),
            ..FaultSpec::default()
        });
        assert_eq!(read(&path).unwrap(), got);
        reset();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_sync_counts_three_operations() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let path = temp_file("three_ops");
        arm(FaultSpec::default());
        write_sync(&path, b"payload").unwrap();
        assert_eq!(op_count(), 3, "create + write + fsync");
        reset();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unarmed_shim_is_a_passthrough() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        let dir = temp_file("passthrough_dir");
        create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        write_sync(&path, b"x").unwrap();
        assert!(metadata(&path).unwrap().is_file());
        assert_eq!(read_dir(&dir).unwrap().count(), 1);
        sync_dir(&dir).unwrap();
        let dest = dir.join("g");
        rename(&path, &dest).unwrap();
        assert_eq!(read_to_string(&dest).unwrap(), "x");
        remove_file(&dest).unwrap();
        assert_eq!(op_count(), 0, "unarmed operations are not counted");
        std::fs::remove_dir_all(&dir).ok();
    }
}

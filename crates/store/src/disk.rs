//! The disk-backed content-addressed blob store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/blobs/matrix/<key:016x>.blob        published artifacts
//! <root>/blobs/clustering/<key:016x>.blob
//! <root>/quarantine/<kind>-<key:016x>.blob   blobs that failed verification
//! <root>/stats.json                          cumulative hit/miss counters
//! <root>/blobs/<kind>/.tmp-*                 in-flight writes (never read)
//! ```
//!
//! Publication is atomic: a blob is written to a `.tmp-` file in its final
//! directory, fsynced, then renamed into place (and the directory synced),
//! so a reader can never observe a half-written artifact — a crash leaves
//! either the old state or the new, plus at worst a dead temp file that
//! the next open sweeps away.
//!
//! Every load re-runs the full decode verification ([`crate::codec`]);
//! a blob that fails is *moved* to the quarantine directory, counted, and
//! reported as a miss — corrupt bytes are recomputed upstream, never
//! served, and the evidence is preserved for inspection instead of being
//! silently deleted.
//!
//! Eviction is LRU by an in-process access sequence (a plain counter, not
//! a clock — the store must stay free of time sources, see the
//! `cache-key-purity` lint): when a put takes the total published bytes
//! over [`StoreOptions::byte_budget`], the least-recently-touched blobs
//! are deleted until the budget holds (the newest blob itself is always
//! kept). On open, recency is seeded in deterministic filename order.
//!
//! The hit/miss/put/eviction/quarantine counters are cumulative across
//! process restarts: they are persisted to `stats.json` (atomic
//! write-then-rename, no fsync — losing the very last update in a crash
//! costs a counter tick, not correctness) and reloaded on open, so a
//! daemon's `stats` response survives restarts.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use symclust_engine::json::{parse_object, JsonObject};
use symclust_obs::MetricsRegistry;

use crate::codec::{Artifact, ArtifactKind, StoreError};
use crate::metric_names;

const STATS_FILE: &str = "stats.json";
const BLOB_EXT: &str = "blob";

/// Configuration for a [`DiskStore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions {
    /// Maximum total bytes of published blobs; `None` disables eviction.
    /// The budget is enforced after each put: least-recently-used blobs
    /// are evicted until the total fits (the blob just published is never
    /// evicted, even if it alone exceeds the budget).
    pub byte_budget: Option<u64>,
}

/// Cumulative store counters, as returned by [`DiskStore::stats`].
///
/// The event counters (`hits` … `put_errors`) persist across process
/// restarts via the `stats.json` sidecar; `blobs` and `bytes` describe
/// what is on disk right now.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads served from an intact on-disk blob.
    pub hits: u64,
    /// Loads that found no blob, or found one that failed verification.
    pub misses: u64,
    /// Blobs published.
    pub puts: u64,
    /// Blobs deleted by the size-budget sweep.
    pub evictions: u64,
    /// Blobs that failed verification on load and were quarantined.
    pub quarantined: u64,
    /// Publish attempts that failed at the filesystem layer.
    pub put_errors: u64,
    /// Blobs currently published.
    pub blobs: u64,
    /// Total bytes of currently published blobs.
    pub bytes: u64,
}

struct Entry {
    size: u64,
    seq: u64,
}

struct Index {
    entries: HashMap<(u8, u64), Entry>,
    total_bytes: u64,
}

/// A disk-backed content-addressed artifact store. Thread-safe; share it
/// behind an `Arc` (the daemon does).
pub struct DiskStore {
    root: PathBuf,
    options: StoreOptions,
    index: Mutex<Index>,
    next_seq: AtomicU64,
    // Cumulative counters (restored from stats.json at open).
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    evictions: AtomicU64,
    quarantined: AtomicU64,
    put_errors: AtomicU64,
    metrics: Option<MetricsRegistry>,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{context} {}: {e}", path.display()))
}

const KINDS: [ArtifactKind; 2] = [ArtifactKind::Matrix, ArtifactKind::Clustering];

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`: builds the
    /// blob index from a deterministic directory scan, sweeps dead temp
    /// files from interrupted publications, and restores the cumulative
    /// stats sidecar.
    pub fn open(root: impl AsRef<Path>, options: StoreOptions) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        let mut total_bytes = 0u64;
        let mut seq = 0u64;
        for kind in KINDS {
            let dir = root.join("blobs").join(kind.dir_name());
            fs::create_dir_all(&dir).map_err(|e| io_err("creating", &dir, e))?;
            let mut names: Vec<(String, PathBuf)> = fs::read_dir(&dir)
                .map_err(|e| io_err("scanning", &dir, e))?
                .filter_map(|entry| {
                    let entry = entry.ok()?;
                    Some((
                        entry.file_name().to_string_lossy().into_owned(),
                        entry.path(),
                    ))
                })
                .collect();
            // Sorted order makes cold-start LRU seeding deterministic.
            names.sort();
            for (name, path) in names {
                if name.starts_with(".tmp-") {
                    // Leftover from a publication interrupted mid-write;
                    // it was never renamed into place, so it is garbage.
                    fs::remove_file(&path).map_err(|e| io_err("sweeping", &path, e))?;
                    continue;
                }
                let Some(key) = parse_blob_name(&name) else {
                    continue; // foreign file; leave it alone
                };
                let meta = fs::metadata(&path).map_err(|e| io_err("stat", &path, e))?;
                let size = meta.len();
                entries.insert((kind.tag(), key), Entry { size, seq });
                total_bytes += size;
                seq += 1;
            }
        }
        let qdir = root.join("quarantine");
        fs::create_dir_all(&qdir).map_err(|e| io_err("creating", &qdir, e))?;

        let persisted = load_stats_sidecar(&root.join(STATS_FILE));
        let store = DiskStore {
            root,
            options,
            index: Mutex::new(Index {
                entries,
                total_bytes,
            }),
            next_seq: AtomicU64::new(seq),
            hits: AtomicU64::new(persisted.hits),
            misses: AtomicU64::new(persisted.misses),
            puts: AtomicU64::new(persisted.puts),
            evictions: AtomicU64::new(persisted.evictions),
            quarantined: AtomicU64::new(persisted.quarantined),
            put_errors: AtomicU64::new(persisted.put_errors),
            metrics: None,
        };
        store.publish_gauges();
        Ok(store)
    }

    /// Attaches a metrics registry; subsequent store events also increment
    /// the `store.*` instruments (DESIGN.md §11).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        metrics
            .gauge(metric_names::STORE_BYTES)
            .set(self.bytes() as f64);
        self.metrics = Some(metrics);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine directory (inspect after corruption incidents).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    fn blob_path(&self, kind: ArtifactKind, key: u64) -> PathBuf {
        self.root
            .join("blobs")
            .join(kind.dir_name())
            .join(format!("{key:016x}.{BLOB_EXT}"))
    }

    fn lock_index(&self) -> std::sync::MutexGuard<'_, Index> {
        self.index.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Loads and fully verifies the artifact stored under `key`.
    ///
    /// Returns `None` — counted as a miss — when no blob exists *or* when
    /// the blob fails verification; in the latter case the blob is moved
    /// to quarantine first, so the caller's recompute-and-put replaces it.
    pub fn load<T: Artifact>(&self, key: u64) -> Option<T> {
        let kind = T::KIND;
        let path = self.blob_path(kind, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.count_miss();
                return None;
            }
            Err(_) => {
                // Unreadable blob (permissions, I/O error): treat as a
                // miss; upstream recomputes and the put will surface any
                // persistent filesystem problem.
                self.count_miss();
                return None;
            }
        };
        match T::decode(&bytes) {
            Ok(artifact) => {
                let mut index = self.lock_index();
                if let Some(entry) = index.entries.get_mut(&(kind.tag(), key)) {
                    entry.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                }
                drop(index);
                self.count_hit();
                Some(artifact)
            }
            Err(err) => {
                self.quarantine(kind, key, &path, &err);
                self.count_miss();
                None
            }
        }
    }

    /// Publishes `artifact` under `key` with atomic write-then-rename.
    /// Idempotent: if the key is already published, nothing is written
    /// (content addressing means the bytes would be identical). May evict
    /// least-recently-used blobs afterwards to honor the byte budget.
    pub fn put<T: Artifact>(&self, key: u64, artifact: &T) -> Result<(), StoreError> {
        let kind = T::KIND;
        {
            let index = self.lock_index();
            if index.entries.contains_key(&(kind.tag(), key)) {
                return Ok(());
            }
        }
        let blob = artifact.encode();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let dir = self.root.join("blobs").join(kind.dir_name());
        let tmp = dir.join(format!(".tmp-{seq}-{key:016x}"));
        let publish = (|| -> Result<(), StoreError> {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
            f.write_all(&blob).map_err(|e| io_err("writing", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("syncing", &tmp, e))?;
            drop(f);
            let dest = self.blob_path(kind, key);
            fs::rename(&tmp, &dest).map_err(|e| io_err("publishing", &dest, e))?;
            // Make the rename itself durable.
            if let Ok(d) = fs::File::open(&dir) {
                let _ = d.sync_all();
            }
            Ok(())
        })();
        if let Err(e) = publish {
            let _ = fs::remove_file(&tmp);
            self.put_errors.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.counter(metric_names::STORE_PUT_ERRORS).inc();
            }
            self.persist_stats();
            return Err(e);
        }
        let size = blob.len() as u64;
        {
            let mut index = self.lock_index();
            index.entries.insert((kind.tag(), key), Entry { size, seq });
            index.total_bytes += size;
            self.evict_over_budget(&mut index, (kind.tag(), key));
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.counter(metric_names::STORE_PUTS).inc();
        }
        self.persist_stats();
        self.publish_gauges();
        Ok(())
    }

    /// Whether a blob is currently published under `key`.
    pub fn contains(&self, kind: ArtifactKind, key: u64) -> bool {
        self.lock_index().entries.contains_key(&(kind.tag(), key))
    }

    /// Number of currently published blobs.
    pub fn len(&self) -> usize {
        self.lock_index().entries.len()
    }

    /// Whether no blob is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of currently published blobs.
    pub fn bytes(&self) -> u64 {
        self.lock_index().total_bytes
    }

    /// Snapshot of the cumulative counters plus current disk occupancy.
    pub fn stats(&self) -> StoreStats {
        let (blobs, bytes) = {
            let index = self.lock_index();
            (index.entries.len() as u64, index.total_bytes)
        };
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            put_errors: self.put_errors.load(Ordering::Relaxed),
            blobs,
            bytes,
        }
    }

    // ---------------------------------------------------------- internals

    fn evict_over_budget(&self, index: &mut Index, keep: (u8, u64)) {
        let Some(budget) = self.options.byte_budget else {
            return;
        };
        while index.total_bytes > budget && index.entries.len() > 1 {
            let victim = index
                .entries
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| *k);
            let Some((tag, key)) = victim else { break };
            let Some(entry) = index.entries.remove(&(tag, key)) else {
                break;
            };
            index.total_bytes -= entry.size;
            for kind in KINDS {
                if kind.tag() == tag {
                    let _ = fs::remove_file(self.blob_path(kind, key));
                }
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.counter(metric_names::STORE_EVICTIONS).inc();
            }
        }
    }

    fn quarantine(&self, kind: ArtifactKind, key: u64, path: &Path, err: &StoreError) {
        let dest = self
            .quarantine_dir()
            .join(format!("{}-{key:016x}.{BLOB_EXT}", kind.dir_name()));
        // Preserve the evidence; if a previous quarantined copy of the
        // same key exists, the newer one replaces it.
        if fs::rename(path, &dest).is_err() {
            // Renaming failed (e.g. racing loader already moved it) —
            // make sure the corrupt blob is at least not served again.
            let _ = fs::remove_file(path);
        }
        let mut index = self.lock_index();
        if let Some(entry) = index.entries.remove(&(kind.tag(), key)) {
            index.total_bytes -= entry.size;
        }
        drop(index);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.counter(metric_names::STORE_QUARANTINED).inc();
        }
        self.persist_stats();
        self.publish_gauges();
        // Quarantine is an incident worth a trace: record the reason in
        // the metrics-free path too via the sidecar-adjacent log file.
        let note = self
            .quarantine_dir()
            .join(format!("{}-{key:016x}.reason.txt", kind.dir_name()));
        let _ = fs::write(&note, format!("{err}\n"));
    }

    fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.counter(metric_names::STORE_HITS).inc();
        }
        self.persist_stats();
    }

    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.counter(metric_names::STORE_MISSES).inc();
        }
        self.persist_stats();
    }

    fn publish_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.gauge(metric_names::STORE_BYTES).set(self.bytes() as f64);
        }
    }

    /// Persists the cumulative counters to `stats.json` via atomic
    /// write-then-rename. Deliberately not fsynced: a crash can lose the
    /// last few ticks, never corrupt the file (the rename is atomic).
    fn persist_stats(&self) {
        let mut obj = JsonObject::new();
        obj.number("hits", self.hits.load(Ordering::Relaxed) as f64);
        obj.number("misses", self.misses.load(Ordering::Relaxed) as f64);
        obj.number("puts", self.puts.load(Ordering::Relaxed) as f64);
        obj.number("evictions", self.evictions.load(Ordering::Relaxed) as f64);
        obj.number(
            "quarantined",
            self.quarantined.load(Ordering::Relaxed) as f64,
        );
        obj.number("put_errors", self.put_errors.load(Ordering::Relaxed) as f64);
        let line = obj.finish();
        let path = self.root.join(STATS_FILE);
        let tmp = self.root.join(".stats.json.tmp");
        // Failures here are non-fatal: stats persistence is best-effort
        // and the in-memory counters remain authoritative for this
        // process's lifetime.
        if fs::write(&tmp, line).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
    }
}

fn parse_blob_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{BLOB_EXT}"))?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

#[derive(Default)]
struct PersistedStats {
    hits: u64,
    misses: u64,
    puts: u64,
    evictions: u64,
    quarantined: u64,
    put_errors: u64,
}

fn load_stats_sidecar(path: &Path) -> PersistedStats {
    let Ok(text) = fs::read_to_string(path) else {
        return PersistedStats::default();
    };
    let Ok(map) = parse_object(text.trim()) else {
        // A corrupt sidecar resets the counters rather than failing the
        // open; losing cumulative stats is an annoyance, not an outage.
        return PersistedStats::default();
    };
    let get = |k: &str| map.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
    PersistedStats {
        hits: get("hits"),
        misses: get("misses"),
        puts: get("puts"),
        evictions: get("evictions"),
        quarantined: get("quarantined"),
        put_errors: get("put_errors"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_sparse::CsrMatrix;

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_store_dir(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "symclust_store_test_{}_{tag}_{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn matrix(scale: f64) -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, scale], vec![scale * 2.0, 0.0]])
    }

    #[test]
    fn put_then_load_roundtrips() {
        let dir = temp_store_dir("roundtrip");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        let m = matrix(1.5);
        store.put(42, &m).unwrap();
        let back: CsrMatrix = store.load(42).unwrap();
        assert_eq!(back, m);
        let stats = store.stats();
        assert_eq!((stats.puts, stats.hits, stats.misses), (1, 1, 0));
        assert_eq!(stats.blobs, 1);
        assert!(stats.bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_key_is_a_miss() {
        let dir = temp_store_dir("miss");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(store.load::<CsrMatrix>(7).is_none());
        assert_eq!(store.stats().misses, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blobs_survive_reopen() {
        let dir = temp_store_dir("reopen");
        let m = matrix(3.0);
        {
            let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
            store.put(7, &m).unwrap();
        }
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(store.contains(ArtifactKind::Matrix, 7));
        let back: CsrMatrix = store.load(7).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_survive_reopen() {
        // Regression test for the satellite bugfix: `ArtifactCache` stats
        // were process-local; store stats must be cumulative across
        // restarts via the sidecar.
        let dir = temp_store_dir("stats_persist");
        {
            let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
            store.put(1, &matrix(1.0)).unwrap();
            let _: Option<CsrMatrix> = store.load(1); // hit
            let _: Option<CsrMatrix> = store.load(2); // miss
            let s = store.stats();
            assert_eq!((s.puts, s.hits, s.misses), (1, 1, 1));
        }
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        let s = store.stats();
        assert_eq!(
            (s.puts, s.hits, s.misses),
            (1, 1, 1),
            "cumulative stats must survive a restart"
        );
        let _: Option<CsrMatrix> = store.load(1);
        assert_eq!(store.stats().hits, 2, "and keep accumulating");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_blob_is_quarantined_not_served() {
        let dir = temp_store_dir("quarantine");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        store.put(5, &matrix(2.0)).unwrap();
        // Flip one payload byte on disk.
        let path = store.blob_path(ArtifactKind::Matrix, 5);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        assert!(store.load::<CsrMatrix>(5).is_none(), "corrupt blob served");
        assert!(!path.exists(), "corrupt blob left in place");
        let quarantined: Vec<_> = std::fs::read_dir(store.quarantine_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            quarantined
                .iter()
                .any(|n| n.contains("matrix-") && n.ends_with(".blob")),
            "blob not moved to quarantine: {quarantined:?}"
        );
        let s = store.stats();
        assert_eq!((s.quarantined, s.misses, s.hits), (1, 1, 0));
        // The key is free again: a recompute-and-put republishes it.
        store.put(5, &matrix(2.0)).unwrap();
        assert!(store.load::<CsrMatrix>(5).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_is_lru_and_keeps_newest() {
        let dir = temp_store_dir("evict");
        let one_blob = matrix(1.0).encode().len() as u64;
        let store = DiskStore::open(
            &dir,
            StoreOptions {
                byte_budget: Some(2 * one_blob),
            },
        )
        .unwrap();
        store.put(1, &matrix(1.0)).unwrap();
        store.put(2, &matrix(2.0)).unwrap();
        // Touch key 1 so key 2 becomes the LRU victim.
        let _: Option<CsrMatrix> = store.load(1);
        store.put(3, &matrix(3.0)).unwrap();
        assert!(
            store.contains(ArtifactKind::Matrix, 1),
            "recently used evicted"
        );
        assert!(!store.contains(ArtifactKind::Matrix, 2), "LRU victim kept");
        assert!(store.contains(ArtifactKind::Matrix, 3), "newest evicted");
        assert_eq!(store.stats().evictions, 1);
        assert!(store.bytes() <= 2 * one_blob);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_budget_always_keeps_the_latest_blob() {
        let dir = temp_store_dir("tiny_budget");
        let store = DiskStore::open(
            &dir,
            StoreOptions {
                byte_budget: Some(1),
            },
        )
        .unwrap();
        store.put(1, &matrix(1.0)).unwrap();
        store.put(2, &matrix(2.0)).unwrap();
        assert_eq!(store.len(), 1, "budget of 1 byte keeps exactly the newest");
        assert!(store.contains(ArtifactKind::Matrix, 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_is_idempotent_per_key() {
        let dir = temp_store_dir("idempotent");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        store.put(9, &matrix(1.0)).unwrap();
        store.put(9, &matrix(1.0)).unwrap();
        assert_eq!(store.stats().puts, 1, "second put of same key is a no-op");
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_temp_files_are_swept_on_open() {
        let dir = temp_store_dir("sweep");
        {
            let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
            store.put(1, &matrix(1.0)).unwrap();
        }
        let tmp = dir.join("blobs").join("matrix").join(".tmp-99-dead");
        std::fs::write(&tmp, b"half-written").unwrap();
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(!tmp.exists(), "interrupted publication not swept");
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kinds_are_namespaced() {
        use symclust_cluster::Clustering;
        let dir = temp_store_dir("kinds");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        let c = Clustering::from_assignments(&[0, 1, 0]);
        store.put(11, &matrix(1.0)).unwrap();
        store.put(11, &c).unwrap(); // same key, different kind: distinct blob
        assert_eq!(store.len(), 2);
        let m: CsrMatrix = store.load(11).unwrap();
        let c2: Clustering = store.load(11).unwrap();
        assert_eq!(m, matrix(1.0));
        assert_eq!(c2, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_track_store_events() {
        let dir = temp_store_dir("metrics");
        let metrics = MetricsRegistry::new();
        let store = DiskStore::open(&dir, StoreOptions::default())
            .unwrap()
            .with_metrics(metrics.clone());
        store.put(1, &matrix(1.0)).unwrap();
        let _: Option<CsrMatrix> = store.load(1);
        let _: Option<CsrMatrix> = store.load(2);
        assert_eq!(metrics.counter(metric_names::STORE_PUTS).get(), 1);
        assert_eq!(metrics.counter(metric_names::STORE_HITS).get(), 1);
        assert_eq!(metrics.counter(metric_names::STORE_MISSES).get(), 1);
        assert!(metrics.gauge(metric_names::STORE_BYTES).get() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

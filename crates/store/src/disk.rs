//! The disk-backed content-addressed blob store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/blobs/matrix/<key:016x>.blob        published artifacts
//! <root>/blobs/clustering/<key:016x>.blob
//! <root>/quarantine/<kind>-<key:016x>.blob   blobs that failed verification
//! <root>/stats.json                          cumulative hit/miss counters
//! <root>/blobs/<kind>/.tmp-*                 in-flight writes (never read)
//! ```
//!
//! Publication is atomic: a blob is written to a `.tmp-` file in its final
//! directory, fsynced, then renamed into place (and the directory synced),
//! so a reader can never observe a half-written artifact — a crash leaves
//! either the old state or the new, plus at worst a dead temp file that
//! the next open sweeps away.
//!
//! Every load re-runs the full decode verification ([`crate::codec`]);
//! a blob that fails is *moved* to the quarantine directory, counted, and
//! reported as a miss — corrupt bytes are recomputed upstream, never
//! served, and the evidence is preserved for inspection instead of being
//! silently deleted.
//!
//! Eviction is LRU by an in-process access sequence (a plain counter, not
//! a clock — the store must stay free of time sources, see the
//! `cache-key-purity` lint): when a put takes the total published bytes
//! over [`StoreOptions::byte_budget`], the least-recently-touched blobs
//! are deleted until the budget holds (the newest blob itself is always
//! kept). On open, recency is seeded in deterministic filename order.
//!
//! The hit/miss/put/eviction/quarantine counters are cumulative across
//! process restarts: they are persisted to `stats.json` (atomic
//! write-then-rename, no fsync — losing the very last update in a crash
//! costs a counter tick, not correctness) and reloaded on open, so a
//! daemon's `stats` response survives restarts. Persist failures are
//! counted (`store.stats_persist_errors`), never silently dropped.
//!
//! Every filesystem call goes through the [`crate::faultfs`] shim (the
//! `store-faultfs` lint enforces it), so the chaos harness can inject
//! schedule-deterministic crashes and errors under any of these syscalls.
//! One injected regime gets first-class handling: a put that fails with
//! `ENOSPC` flips the store into **degraded mode** — publication is
//! suspended (callers still get their computed artifacts; most puts drop
//! out early, every [`DEGRADED_PROBE_INTERVAL`]-th put probes the disk)
//! while loads keep serving hits. The first successful probe clears the
//! flag. The mode is surfaced via [`DiskStore::is_degraded`], the
//! `store.degraded` gauge, and the daemon's `health`/`stats` ops.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use symclust_engine::json::{parse_object, JsonObject};
use symclust_obs::MetricsRegistry;

use crate::codec::{Artifact, ArtifactKind, StoreError};
use crate::faultfs;
use crate::metric_names;

const STATS_FILE: &str = "stats.json";
const BLOB_EXT: &str = "blob";

/// While the store is in `ENOSPC` degraded mode, one put out of this many
/// actually touches the disk to probe whether space came back; the rest
/// return immediately without publishing.
pub const DEGRADED_PROBE_INTERVAL: u64 = 16;

/// The raw OS error number for `ENOSPC` ("no space left on device").
const ENOSPC: i32 = 28;

/// Configuration for a [`DiskStore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions {
    /// Maximum total bytes of published blobs; `None` disables eviction.
    /// The budget is enforced after each put: least-recently-used blobs
    /// are evicted until the total fits (the blob just published is never
    /// evicted, even if it alone exceeds the budget).
    pub byte_budget: Option<u64>,
}

/// Cumulative store counters, as returned by [`DiskStore::stats`].
///
/// The event counters (`hits` … `put_errors`) persist across process
/// restarts via the `stats.json` sidecar; `blobs` and `bytes` describe
/// what is on disk right now.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads served from an intact on-disk blob.
    pub hits: u64,
    /// Loads that found no blob, or found one that failed verification.
    pub misses: u64,
    /// Blobs published.
    pub puts: u64,
    /// Blobs deleted by the size-budget sweep.
    pub evictions: u64,
    /// Blobs that failed verification on load and were quarantined.
    pub quarantined: u64,
    /// Publish attempts that failed at the filesystem layer.
    pub put_errors: u64,
    /// Failed attempts to persist this very structure to `stats.json`.
    pub stats_persist_errors: u64,
    /// Blobs currently published.
    pub blobs: u64,
    /// Total bytes of currently published blobs.
    pub bytes: u64,
    /// Whether the store is currently in `ENOSPC` degraded mode.
    pub degraded: bool,
}

struct Entry {
    size: u64,
    seq: u64,
}

struct Index {
    entries: HashMap<(u8, u64), Entry>,
    total_bytes: u64,
}

/// A disk-backed content-addressed artifact store. Thread-safe; share it
/// behind an `Arc` (the daemon does).
pub struct DiskStore {
    root: PathBuf,
    options: StoreOptions,
    index: Mutex<Index>,
    next_seq: AtomicU64,
    // Cumulative counters (restored from stats.json at open).
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    evictions: AtomicU64,
    quarantined: AtomicU64,
    put_errors: AtomicU64,
    stats_persist_errors: AtomicU64,
    // ENOSPC degraded mode: publication suspended, hits still served.
    degraded: AtomicBool,
    degraded_probe: AtomicU64,
    metrics: Option<MetricsRegistry>,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{context} {}: {e}", path.display()))
}

const KINDS: [ArtifactKind; 2] = [ArtifactKind::Matrix, ArtifactKind::Clustering];

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`: builds the
    /// blob index from a deterministic directory scan, sweeps dead temp
    /// files from interrupted publications, restores the cumulative stats
    /// sidecar, and re-enforces the byte budget (a crash between a
    /// publication and its eviction sweep can leave the store over
    /// budget; recovery must not).
    pub fn open(root: impl AsRef<Path>, options: StoreOptions) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        let mut total_bytes = 0u64;
        let mut seq = 0u64;
        for kind in KINDS {
            let dir = root.join("blobs").join(kind.dir_name());
            faultfs::create_dir_all(&dir).map_err(|e| io_err("creating", &dir, e))?;
            let mut names: Vec<(String, PathBuf)> = faultfs::read_dir(&dir)
                .map_err(|e| io_err("scanning", &dir, e))?
                .filter_map(|entry| {
                    let entry = entry.ok()?;
                    Some((
                        entry.file_name().to_string_lossy().into_owned(),
                        entry.path(),
                    ))
                })
                .collect();
            // Sorted order makes cold-start LRU seeding deterministic.
            names.sort();
            for (name, path) in names {
                if name.starts_with(".tmp-") {
                    // Leftover from a publication interrupted mid-write;
                    // it was never renamed into place, so it is garbage.
                    faultfs::remove_file(&path).map_err(|e| io_err("sweeping", &path, e))?;
                    continue;
                }
                let Some(key) = parse_blob_name(&name) else {
                    continue; // foreign file; leave it alone
                };
                let meta = faultfs::metadata(&path).map_err(|e| io_err("stat", &path, e))?;
                let size = meta.len();
                entries.insert((kind.tag(), key), Entry { size, seq });
                total_bytes += size;
                seq += 1;
            }
        }
        let qdir = root.join("quarantine");
        faultfs::create_dir_all(&qdir).map_err(|e| io_err("creating", &qdir, e))?;

        let persisted = load_stats_sidecar(&root.join(STATS_FILE));
        let store = DiskStore {
            root,
            options,
            index: Mutex::new(Index {
                entries,
                total_bytes,
            }),
            next_seq: AtomicU64::new(seq),
            hits: AtomicU64::new(persisted.hits),
            misses: AtomicU64::new(persisted.misses),
            puts: AtomicU64::new(persisted.puts),
            evictions: AtomicU64::new(persisted.evictions),
            quarantined: AtomicU64::new(persisted.quarantined),
            put_errors: AtomicU64::new(persisted.put_errors),
            stats_persist_errors: AtomicU64::new(persisted.stats_persist_errors),
            degraded: AtomicBool::new(false),
            degraded_probe: AtomicU64::new(0),
            metrics: None,
        };
        // Re-enforce the budget over whatever the scan found, keeping the
        // most-recently-seeded entry (deterministic: filename order).
        let evicted = {
            let mut index = store.lock_index();
            let newest = index
                .entries
                .iter()
                .max_by_key(|(_, e)| e.seq)
                .map(|(k, _)| *k);
            match newest {
                Some(keep) => {
                    let before = store.evictions.load(Ordering::Relaxed);
                    store.evict_over_budget(&mut index, keep);
                    store.evictions.load(Ordering::Relaxed) != before
                }
                None => false,
            }
        };
        if evicted {
            store.persist_stats();
        }
        store.publish_gauges();
        Ok(store)
    }

    /// Attaches a metrics registry; subsequent store events also increment
    /// the `store.*` instruments (DESIGN.md §11).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        metrics
            .gauge(metric_names::STORE_BYTES)
            .set(self.bytes() as f64);
        metrics
            .gauge(metric_names::STORE_DEGRADED)
            .set(if self.is_degraded() { 1.0 } else { 0.0 });
        self.metrics = Some(metrics);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine directory (inspect after corruption incidents).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    fn blob_path(&self, kind: ArtifactKind, key: u64) -> PathBuf {
        self.root
            .join("blobs")
            .join(kind.dir_name())
            .join(format!("{key:016x}.{BLOB_EXT}"))
    }

    fn lock_index(&self) -> std::sync::MutexGuard<'_, Index> {
        self.index.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Loads and fully verifies the artifact stored under `key`.
    ///
    /// Returns `None` — counted as a miss — when no blob exists *or* when
    /// the blob fails verification; in the latter case the blob is moved
    /// to quarantine first, so the caller's recompute-and-put replaces it.
    pub fn load<T: Artifact>(&self, key: u64) -> Option<T> {
        let kind = T::KIND;
        let path = self.blob_path(kind, key);
        let bytes = match faultfs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.count_miss();
                return None;
            }
            Err(_) => {
                // Unreadable blob (permissions, I/O error): treat as a
                // miss; upstream recomputes and the put will surface any
                // persistent filesystem problem.
                self.count_miss();
                return None;
            }
        };
        match T::decode(&bytes) {
            Ok(artifact) => {
                let mut index = self.lock_index();
                if let Some(entry) = index.entries.get_mut(&(kind.tag(), key)) {
                    entry.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                }
                drop(index);
                self.count_hit();
                Some(artifact)
            }
            Err(err) => {
                self.quarantine(kind, key, &path, &err);
                self.count_miss();
                None
            }
        }
    }

    /// Publishes `artifact` under `key` with atomic write-then-rename.
    /// Idempotent: if the key is already published, nothing is written
    /// (content addressing means the bytes would be identical). May evict
    /// least-recently-used blobs afterwards to honor the byte budget.
    /// In `ENOSPC` degraded mode the put usually returns `Ok(())` without
    /// publishing anything (the caller keeps its computed artifact; the
    /// disk is full, not the pipeline); every
    /// [`DEGRADED_PROBE_INTERVAL`]-th put probes the disk and the first
    /// success clears the mode.
    pub fn put<T: Artifact>(&self, key: u64, artifact: &T) -> Result<(), StoreError> {
        let kind = T::KIND;
        {
            let index = self.lock_index();
            if index.entries.contains_key(&(kind.tag(), key)) {
                return Ok(());
            }
        }
        if self.degraded.load(Ordering::Relaxed) {
            let probe = self.degraded_probe.fetch_add(1, Ordering::Relaxed);
            #[allow(clippy::manual_is_multiple_of)] // u64::is_multiple_of needs 1.87, MSRV is 1.75
            if probe % DEGRADED_PROBE_INTERVAL != 0 {
                return Ok(());
            }
        }
        let blob = artifact.encode();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let dir = self.root.join("blobs").join(kind.dir_name());
        let tmp = dir.join(format!(".tmp-{seq}-{key:016x}"));
        let dest = self.blob_path(kind, key);
        let publish = (|| -> Result<(), (&'static str, &Path, std::io::Error)> {
            faultfs::write_sync(&tmp, &blob).map_err(|e| ("writing", tmp.as_path(), e))?;
            faultfs::rename(&tmp, &dest).map_err(|e| ("publishing", dest.as_path(), e))?;
            // Make the rename itself durable (best-effort).
            let _ = faultfs::sync_dir(&dir);
            Ok(())
        })();
        if let Err((context, path, e)) = publish {
            let disk_full = e.raw_os_error() == Some(ENOSPC);
            let _ = faultfs::remove_file(&tmp);
            self.put_errors.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.counter(metric_names::STORE_PUT_ERRORS).inc();
            }
            if disk_full {
                self.set_degraded(true);
            }
            self.persist_stats();
            return Err(io_err(context, path, e));
        }
        // Publication works: if we were degraded, the disk has space again.
        self.set_degraded(false);
        let size = blob.len() as u64;
        {
            let mut index = self.lock_index();
            index.entries.insert((kind.tag(), key), Entry { size, seq });
            index.total_bytes += size;
            self.evict_over_budget(&mut index, (kind.tag(), key));
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.counter(metric_names::STORE_PUTS).inc();
        }
        self.persist_stats();
        self.publish_gauges();
        Ok(())
    }

    /// Whether a blob is currently published under `key`.
    pub fn contains(&self, kind: ArtifactKind, key: u64) -> bool {
        self.lock_index().entries.contains_key(&(kind.tag(), key))
    }

    /// Number of currently published blobs.
    pub fn len(&self) -> usize {
        self.lock_index().entries.len()
    }

    /// Whether no blob is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of currently published blobs.
    pub fn bytes(&self) -> u64 {
        self.lock_index().total_bytes
    }

    /// Snapshot of the cumulative counters plus current disk occupancy.
    pub fn stats(&self) -> StoreStats {
        let (blobs, bytes) = {
            let index = self.lock_index();
            (index.entries.len() as u64, index.total_bytes)
        };
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            put_errors: self.put_errors.load(Ordering::Relaxed),
            stats_persist_errors: self.stats_persist_errors.load(Ordering::Relaxed),
            blobs,
            bytes,
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }

    /// Whether the store is currently in `ENOSPC` degraded mode
    /// (publication suspended, hits still served).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Persists the cumulative counters right now. The daemon calls this
    /// once during drain, so a graceful shutdown never loses the final
    /// ticks between the last store event and process exit.
    pub fn flush_stats(&self) {
        self.persist_stats();
    }

    // ---------------------------------------------------------- internals

    fn evict_over_budget(&self, index: &mut Index, keep: (u8, u64)) {
        let Some(budget) = self.options.byte_budget else {
            return;
        };
        while index.total_bytes > budget && index.entries.len() > 1 {
            let victim = index
                .entries
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| *k);
            let Some((tag, key)) = victim else { break };
            let Some(entry) = index.entries.remove(&(tag, key)) else {
                break;
            };
            index.total_bytes -= entry.size;
            for kind in KINDS {
                if kind.tag() == tag {
                    let _ = faultfs::remove_file(&self.blob_path(kind, key));
                }
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.counter(metric_names::STORE_EVICTIONS).inc();
            }
        }
    }

    fn quarantine(&self, kind: ArtifactKind, key: u64, path: &Path, err: &StoreError) {
        let dest = self
            .quarantine_dir()
            .join(format!("{}-{key:016x}.{BLOB_EXT}", kind.dir_name()));
        // Preserve the evidence; if a previous quarantined copy of the
        // same key exists, the newer one replaces it.
        if faultfs::rename(path, &dest).is_err() {
            // Renaming failed (e.g. racing loader already moved it) —
            // make sure the corrupt blob is at least not served again.
            let _ = faultfs::remove_file(path);
        }
        let mut index = self.lock_index();
        if let Some(entry) = index.entries.remove(&(kind.tag(), key)) {
            index.total_bytes -= entry.size;
        }
        drop(index);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.counter(metric_names::STORE_QUARANTINED).inc();
        }
        self.persist_stats();
        self.publish_gauges();
        // Quarantine is an incident worth a trace: record the reason in
        // the metrics-free path too via the sidecar-adjacent log file.
        let note = self
            .quarantine_dir()
            .join(format!("{}-{key:016x}.reason.txt", kind.dir_name()));
        let _ = faultfs::write(&note, format!("{err}\n").as_bytes());
    }

    fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.counter(metric_names::STORE_HITS).inc();
        }
        self.persist_stats();
    }

    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.counter(metric_names::STORE_MISSES).inc();
        }
        self.persist_stats();
    }

    fn publish_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.gauge(metric_names::STORE_BYTES).set(self.bytes() as f64);
        }
    }

    fn set_degraded(&self, on: bool) {
        let was = self.degraded.swap(on, Ordering::Relaxed);
        if was != on {
            if let Some(m) = &self.metrics {
                m.gauge(metric_names::STORE_DEGRADED)
                    .set(if on { 1.0 } else { 0.0 });
            }
        }
    }

    /// Persists the cumulative counters to `stats.json` via atomic
    /// write-then-rename. Deliberately not fsynced: a crash can lose the
    /// last few ticks, never corrupt the file (the rename is atomic).
    /// Failures are non-fatal — the in-memory counters remain
    /// authoritative for this process's lifetime — but they are *counted*
    /// (`store.stats_persist_errors`) and surfaced via [`Self::stats`],
    /// so a daemon whose sidecar silently stopped updating is visible.
    fn persist_stats(&self) {
        let mut obj = JsonObject::new();
        obj.number("hits", self.hits.load(Ordering::Relaxed) as f64);
        obj.number("misses", self.misses.load(Ordering::Relaxed) as f64);
        obj.number("puts", self.puts.load(Ordering::Relaxed) as f64);
        obj.number("evictions", self.evictions.load(Ordering::Relaxed) as f64);
        obj.number(
            "quarantined",
            self.quarantined.load(Ordering::Relaxed) as f64,
        );
        obj.number("put_errors", self.put_errors.load(Ordering::Relaxed) as f64);
        obj.number(
            "stats_persist_errors",
            self.stats_persist_errors.load(Ordering::Relaxed) as f64,
        );
        let line = obj.finish();
        let path = self.root.join(STATS_FILE);
        let tmp = self.root.join(".stats.json.tmp");
        let written =
            faultfs::write(&tmp, line.as_bytes()).and_then(|()| faultfs::rename(&tmp, &path));
        if written.is_err() {
            self.stats_persist_errors.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.counter(metric_names::STORE_STATS_PERSIST_ERRORS).inc();
            }
        }
    }
}

fn parse_blob_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{BLOB_EXT}"))?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

#[derive(Default)]
struct PersistedStats {
    hits: u64,
    misses: u64,
    puts: u64,
    evictions: u64,
    quarantined: u64,
    put_errors: u64,
    stats_persist_errors: u64,
}

fn load_stats_sidecar(path: &Path) -> PersistedStats {
    let Ok(text) = faultfs::read_to_string(path) else {
        return PersistedStats::default();
    };
    let Ok(map) = parse_object(text.trim()) else {
        // A corrupt sidecar resets the counters rather than failing the
        // open; losing cumulative stats is an annoyance, not an outage.
        return PersistedStats::default();
    };
    let get = |k: &str| map.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
    PersistedStats {
        hits: get("hits"),
        misses: get("misses"),
        puts: get("puts"),
        evictions: get("evictions"),
        quarantined: get("quarantined"),
        put_errors: get("put_errors"),
        stats_persist_errors: get("stats_persist_errors"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_sparse::CsrMatrix;

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_store_dir(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "symclust_store_test_{}_{tag}_{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn matrix(scale: f64) -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, scale], vec![scale * 2.0, 0.0]])
    }

    #[test]
    fn put_then_load_roundtrips() {
        let dir = temp_store_dir("roundtrip");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        let m = matrix(1.5);
        store.put(42, &m).unwrap();
        let back: CsrMatrix = store.load(42).unwrap();
        assert_eq!(back, m);
        let stats = store.stats();
        assert_eq!((stats.puts, stats.hits, stats.misses), (1, 1, 0));
        assert_eq!(stats.blobs, 1);
        assert!(stats.bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_key_is_a_miss() {
        let dir = temp_store_dir("miss");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(store.load::<CsrMatrix>(7).is_none());
        assert_eq!(store.stats().misses, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blobs_survive_reopen() {
        let dir = temp_store_dir("reopen");
        let m = matrix(3.0);
        {
            let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
            store.put(7, &m).unwrap();
        }
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(store.contains(ArtifactKind::Matrix, 7));
        let back: CsrMatrix = store.load(7).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_survive_reopen() {
        // Regression test for the satellite bugfix: `ArtifactCache` stats
        // were process-local; store stats must be cumulative across
        // restarts via the sidecar.
        let dir = temp_store_dir("stats_persist");
        {
            let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
            store.put(1, &matrix(1.0)).unwrap();
            let _: Option<CsrMatrix> = store.load(1); // hit
            let _: Option<CsrMatrix> = store.load(2); // miss
            let s = store.stats();
            assert_eq!((s.puts, s.hits, s.misses), (1, 1, 1));
        }
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        let s = store.stats();
        assert_eq!(
            (s.puts, s.hits, s.misses),
            (1, 1, 1),
            "cumulative stats must survive a restart"
        );
        let _: Option<CsrMatrix> = store.load(1);
        assert_eq!(store.stats().hits, 2, "and keep accumulating");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_blob_is_quarantined_not_served() {
        let dir = temp_store_dir("quarantine");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        store.put(5, &matrix(2.0)).unwrap();
        // Flip one payload byte on disk.
        let path = store.blob_path(ArtifactKind::Matrix, 5);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        assert!(store.load::<CsrMatrix>(5).is_none(), "corrupt blob served");
        assert!(!path.exists(), "corrupt blob left in place");
        let quarantined: Vec<_> = std::fs::read_dir(store.quarantine_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            quarantined
                .iter()
                .any(|n| n.contains("matrix-") && n.ends_with(".blob")),
            "blob not moved to quarantine: {quarantined:?}"
        );
        let s = store.stats();
        assert_eq!((s.quarantined, s.misses, s.hits), (1, 1, 0));
        // The key is free again: a recompute-and-put republishes it.
        store.put(5, &matrix(2.0)).unwrap();
        assert!(store.load::<CsrMatrix>(5).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_is_lru_and_keeps_newest() {
        let dir = temp_store_dir("evict");
        let one_blob = matrix(1.0).encode().len() as u64;
        let store = DiskStore::open(
            &dir,
            StoreOptions {
                byte_budget: Some(2 * one_blob),
            },
        )
        .unwrap();
        store.put(1, &matrix(1.0)).unwrap();
        store.put(2, &matrix(2.0)).unwrap();
        // Touch key 1 so key 2 becomes the LRU victim.
        let _: Option<CsrMatrix> = store.load(1);
        store.put(3, &matrix(3.0)).unwrap();
        assert!(
            store.contains(ArtifactKind::Matrix, 1),
            "recently used evicted"
        );
        assert!(!store.contains(ArtifactKind::Matrix, 2), "LRU victim kept");
        assert!(store.contains(ArtifactKind::Matrix, 3), "newest evicted");
        assert_eq!(store.stats().evictions, 1);
        assert!(store.bytes() <= 2 * one_blob);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_budget_always_keeps_the_latest_blob() {
        let dir = temp_store_dir("tiny_budget");
        let store = DiskStore::open(
            &dir,
            StoreOptions {
                byte_budget: Some(1),
            },
        )
        .unwrap();
        store.put(1, &matrix(1.0)).unwrap();
        store.put(2, &matrix(2.0)).unwrap();
        assert_eq!(store.len(), 1, "budget of 1 byte keeps exactly the newest");
        assert!(store.contains(ArtifactKind::Matrix, 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_is_idempotent_per_key() {
        let dir = temp_store_dir("idempotent");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        store.put(9, &matrix(1.0)).unwrap();
        store.put(9, &matrix(1.0)).unwrap();
        assert_eq!(store.stats().puts, 1, "second put of same key is a no-op");
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_temp_files_are_swept_on_open() {
        let dir = temp_store_dir("sweep");
        {
            let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
            store.put(1, &matrix(1.0)).unwrap();
        }
        let tmp = dir.join("blobs").join("matrix").join(".tmp-99-dead");
        std::fs::write(&tmp, b"half-written").unwrap();
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(!tmp.exists(), "interrupted publication not swept");
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kinds_are_namespaced() {
        use symclust_cluster::Clustering;
        let dir = temp_store_dir("kinds");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        let c = Clustering::from_assignments(&[0, 1, 0]);
        store.put(11, &matrix(1.0)).unwrap();
        store.put(11, &c).unwrap(); // same key, different kind: distinct blob
        assert_eq!(store.len(), 2);
        let m: CsrMatrix = store.load(11).unwrap();
        let c2: Clustering = store.load(11).unwrap();
        assert_eq!(m, matrix(1.0));
        assert_eq!(c2, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_with_budget_re_enforces_eviction() {
        // A crash between a publication and its eviction sweep can leave
        // the store over budget; open must bring it back under.
        let dir = temp_store_dir("evict_on_open");
        let one_blob = matrix(1.0).encode().len() as u64;
        {
            let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
            store.put(1, &matrix(1.0)).unwrap();
            store.put(2, &matrix(2.0)).unwrap();
            store.put(3, &matrix(3.0)).unwrap();
        }
        let store = DiskStore::open(
            &dir,
            StoreOptions {
                byte_budget: Some(one_blob),
            },
        )
        .unwrap();
        assert_eq!(store.len(), 1, "open left the store over budget");
        assert!(store.bytes() <= one_blob);
        assert!(
            store.contains(ArtifactKind::Matrix, 3),
            "open evicted the newest entry instead of the oldest"
        );
        assert_eq!(store.stats().evictions, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_report_no_degradation_by_default() {
        let dir = temp_store_dir("not_degraded");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        store.put(1, &matrix(1.0)).unwrap();
        let s = store.stats();
        assert!(!s.degraded);
        assert!(!store.is_degraded());
        assert_eq!(s.stats_persist_errors, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_track_store_events() {
        let dir = temp_store_dir("metrics");
        let metrics = MetricsRegistry::new();
        let store = DiskStore::open(&dir, StoreOptions::default())
            .unwrap()
            .with_metrics(metrics.clone());
        store.put(1, &matrix(1.0)).unwrap();
        let _: Option<CsrMatrix> = store.load(1);
        let _: Option<CsrMatrix> = store.load(2);
        assert_eq!(metrics.counter(metric_names::STORE_PUTS).get(), 1);
        assert_eq!(metrics.counter(metric_names::STORE_HITS).get(), 1);
        assert_eq!(metrics.counter(metric_names::STORE_MISSES).get(), 1);
        assert!(metrics.gauge(metric_names::STORE_BYTES).get() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod fault_tests {
    use super::*;
    use crate::faultfs::{self, FAULT_TEST_LOCK};
    use symclust_engine::faultplan::{FaultErrno, FaultSpec};
    use symclust_sparse::CsrMatrix;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("symclust_store_fault_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn matrix(scale: f64) -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, scale], vec![scale * 2.0, 0.0]])
    }

    #[test]
    fn enospc_put_enters_degraded_mode_and_hits_keep_serving() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = temp_store_dir("degraded");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        store.put(1, &matrix(1.0)).unwrap();

        faultfs::arm(FaultSpec {
            enospc_after: Some(0),
            ..FaultSpec::default()
        });
        let err = store.put(2, &matrix(2.0)).unwrap_err();
        assert!(
            err.to_string().contains("writing"),
            "unexpected error: {err}"
        );
        assert!(store.is_degraded(), "ENOSPC put must flip degraded mode");
        assert!(store.stats().degraded);
        assert_eq!(store.stats().put_errors, 1);

        // Hits keep serving on the full disk (reads are not injected by
        // enospc-after), and the failed key stays unpublished.
        let back: Option<CsrMatrix> = store.load(1);
        assert!(back.is_some(), "degraded mode must keep serving hits");
        assert!(!store.contains(ArtifactKind::Matrix, 2));

        // While degraded, most puts are silently suspended: the first
        // (probe 0) hits the disk and fails, the next
        // DEGRADED_PROBE_INTERVAL - 1 drop out early with Ok(()).
        assert!(
            store.put(100, &matrix(3.0)).is_err(),
            "probe 0 touches disk"
        );
        for i in 1..DEGRADED_PROBE_INTERVAL {
            assert!(
                store.put(100 + i, &matrix(3.0)).is_ok(),
                "suspended put {i} must not error"
            );
            assert!(!store.contains(ArtifactKind::Matrix, 100 + i));
        }

        // Disk space comes back: the next probe publishes and clears the
        // mode.
        faultfs::reset();
        let probe_key = 100 + DEGRADED_PROBE_INTERVAL;
        store.put(probe_key, &matrix(4.0)).unwrap();
        assert!(!store.is_degraded(), "successful probe must clear degraded");
        assert!(store.contains(ArtifactKind::Matrix, probe_key));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_persist_failures_are_counted_not_swallowed() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = temp_store_dir("persist_err");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();

        // A miss runs: read (op 0), then persist_stats = write (op 1) +
        // rename (op 2). Injecting EIO into the sidecar write must be
        // counted, not dropped on the floor.
        faultfs::arm(FaultSpec {
            err_at: Some((1, FaultErrno::Eio)),
            ..FaultSpec::default()
        });
        assert!(store.load::<CsrMatrix>(7).is_none());
        faultfs::reset();
        let s = store.stats();
        assert_eq!((s.misses, s.stats_persist_errors), (1, 1));

        // The next successful persist carries the failure count into the
        // sidecar, so it survives a restart like every other counter.
        assert!(store.load::<CsrMatrix>(8).is_none());
        drop(store);
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.stats().stats_persist_errors, 1);
        assert_eq!(store.stats().misses, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_short_read_quarantines_instead_of_serving() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = temp_store_dir("short_read");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        store.put(5, &matrix(2.0)).unwrap();

        faultfs::arm(FaultSpec {
            seed: 3,
            short_read_at: Some(0),
            ..FaultSpec::default()
        });
        let got: Option<CsrMatrix> = store.load(5);
        faultfs::reset();
        assert!(got.is_none(), "a truncated blob must never be served");
        let s = store.stats();
        assert_eq!((s.quarantined, s.misses), (1, 1));
        assert!(!store.contains(ArtifactKind::Matrix, 5));
        // The recompute-and-put path republishes cleanly.
        store.put(5, &matrix(2.0)).unwrap();
        let back: Option<CsrMatrix> = store.load(5);
        assert_eq!(back, Some(matrix(2.0)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_rename_failure_is_a_put_error_and_cleans_the_temp() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = temp_store_dir("rename_fail");
        let store = DiskStore::open(&dir, StoreOptions::default()).unwrap();

        // put = create (0) + write (1) + fsync (2) + rename (3) + ...
        faultfs::arm(FaultSpec {
            err_at: Some((3, FaultErrno::Eio)),
            ..FaultSpec::default()
        });
        assert!(store.put(9, &matrix(1.0)).is_err());
        faultfs::reset();
        assert_eq!(store.stats().put_errors, 1);
        assert!(!store.contains(ArtifactKind::Matrix, 9));
        let leftovers: Vec<String> = std::fs::read_dir(dir.join("blobs").join("matrix"))
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            leftovers.iter().all(|n| !n.starts_with(".tmp-")),
            "failed publication left a temp file: {leftovers:?}"
        );
        // The same key publishes fine afterwards.
        store.put(9, &matrix(1.0)).unwrap();
        assert!(store.contains(ArtifactKind::Matrix, 9));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Versioned binary serialization for store artifacts.
//!
//! Blob layout (all integers little-endian):
//!
//! ```text
//! magic  b"SYMC"            4 bytes
//! version u16               format revision (bump on any layout change)
//! kind    u8                1 = CSR matrix, 2 = clustering
//! reserved u8               always 0
//! payload                   kind-specific, every array length-prefixed
//! checksum u64              FNV-1a over every preceding byte
//! ```
//!
//! The decode path rejects corruption with a *named* error at the first
//! layer that can see it: a wrong magic/version/kind before anything else,
//! then the checksum (which covers the full blob, so any single-byte flip
//! is caught), then — for a blob whose checksum was forged to match —
//! the CSR structural validators
//! ([`validate_parts`](symclust_sparse::csr::validate_parts)), which name
//! the violated invariant. Decoding never trusts a length prefix beyond
//! the bytes actually present, so a corrupt length cannot drive an
//! allocation.
//!
//! Everything here is deterministic: `encode(decode(blob)) == blob` and
//! two equal artifacts always serialize to identical bytes, which is what
//! lets the serve layer promise byte-identical responses across
//! processes. No wall clock, thread count, or environment reaches the
//! encoding (enforced by the `cache-key-purity` lint, DESIGN.md §13).

use symclust_cluster::Clustering;
use symclust_engine::fingerprint::Fnv64;
use symclust_sparse::csr::validate_parts;
use symclust_sparse::CsrMatrix;

/// Blob magic: the first four bytes of every valid artifact.
pub const MAGIC: [u8; 4] = *b"SYMC";

/// Current blob format revision.
pub const FORMAT_VERSION: u16 = 1;

/// What an artifact blob holds (also the on-disk subdirectory name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A [`CsrMatrix`] (symmetrized adjacency / similarity matrix).
    Matrix,
    /// A [`Clustering`] (dense node → cluster assignment).
    Clustering,
}

impl ArtifactKind {
    /// Wire tag byte.
    pub fn tag(self) -> u8 {
        match self {
            ArtifactKind::Matrix => 1,
            ArtifactKind::Clustering => 2,
        }
    }

    /// On-disk subdirectory name.
    pub fn dir_name(self) -> &'static str {
        match self {
            ArtifactKind::Matrix => "matrix",
            ArtifactKind::Clustering => "clustering",
        }
    }

    fn from_tag(tag: u8) -> Result<Self, StoreError> {
        match tag {
            1 => Ok(ArtifactKind::Matrix),
            2 => Ok(ArtifactKind::Clustering),
            other => Err(StoreError::BadKind(other)),
        }
    }
}

/// Errors raised by the codec and the disk store.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// The blob does not start with the `SYMC` magic.
    BadMagic,
    /// The blob's format revision is unknown to this build.
    UnsupportedVersion(u16),
    /// The blob's kind tag names no known artifact kind.
    BadKind(u8),
    /// The blob claims a kind that differs from the one requested.
    KindMismatch {
        /// Kind the caller asked to decode.
        expected: ArtifactKind,
        /// Kind the blob header declares.
        found: ArtifactKind,
    },
    /// The blob ended before a field it promised.
    Truncated {
        /// Which field was being read.
        what: &'static str,
    },
    /// The trailing checksum does not match the blob contents.
    ChecksumMismatch {
        /// Checksum stored in the blob.
        stored: u64,
        /// Checksum recomputed over the blob contents.
        computed: u64,
    },
    /// Payload lengths are internally inconsistent (e.g. trailing bytes,
    /// or a section count that contradicts a recorded dimension).
    LengthMismatch {
        /// What was inconsistent.
        what: &'static str,
        /// Details with the offending numbers.
        detail: String,
    },
    /// The decoded matrix violates a CSR invariant; `check` names it
    /// (same vocabulary as [`symclust_sparse::SparseError::Corrupted`]).
    CorruptedArtifact {
        /// The violated invariant.
        check: &'static str,
        /// Where and how it failed.
        detail: String,
    },
    /// A filesystem operation failed (disk layer).
    Io(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not an artifact blob (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported blob format version {v}")
            }
            StoreError::BadKind(tag) => write!(f, "unknown artifact kind tag {tag}"),
            StoreError::KindMismatch { expected, found } => write!(
                f,
                "artifact kind mismatch: requested {expected:?}, blob holds {found:?}"
            ),
            StoreError::Truncated { what } => write!(f, "blob truncated while reading {what}"),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "blob checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            StoreError::LengthMismatch { what, detail } => {
                write!(f, "blob length mismatch in {what}: {detail}")
            }
            StoreError::CorruptedArtifact { check, detail } => {
                write!(f, "decoded artifact corrupt ({check} invariant): {detail}")
            }
            StoreError::Io(msg) => write!(f, "store I/O error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// FNV-1a 64-bit digest of `bytes` — the blob checksum. Deterministic
/// across platforms; shares the hasher with the engine's cache keys so
/// the two content-addressing schemes cannot drift apart.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// A value that can round-trip through the store's binary codec.
pub trait Artifact: Sized {
    /// Which blob kind this type serializes as.
    const KIND: ArtifactKind;

    /// Serializes into a complete blob (header + payload + checksum).
    fn encode(&self) -> Vec<u8>;

    /// Deserializes and fully verifies a blob of this kind.
    fn decode(blob: &[u8]) -> Result<Self, StoreError>;
}

// -------------------------------------------------------------- writing

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: ArtifactKind) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.push(kind.tag());
        buf.push(0); // reserved
        Writer { buf }
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64_slice_of_usize(&mut self, values: &[usize]) {
        self.u64(values.len() as u64);
        for &v in values {
            self.u64(v as u64);
        }
    }

    fn u32_slice(&mut self, values: &[u32]) {
        self.u64(values.len() as u64);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn f64_slice(&mut self, values: &[f64]) {
        self.u64(values.len() as u64);
        for &v in values {
            // Bit pattern, not value: -0.0 and 0.0 must round-trip as-is.
            self.u64(v.to_bits());
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let sum = checksum64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

// -------------------------------------------------------------- reading

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StoreError::Truncated { what })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, StoreError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a length prefix and bounds-checks it against the bytes that
    /// actually remain, so a corrupt length can never drive an allocation
    /// beyond the blob itself.
    fn len_prefix(&mut self, elem_size: usize, what: &'static str) -> Result<usize, StoreError> {
        let claimed = self.u64(what)?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        let max_elems = remaining / elem_size as u64;
        if claimed > max_elems {
            return Err(StoreError::LengthMismatch {
                what,
                detail: format!("claimed {claimed} elements but only {remaining} bytes remain"),
            });
        }
        Ok(claimed as usize)
    }

    fn usize_vec(&mut self, what: &'static str) -> Result<Vec<usize>, StoreError> {
        let n = self.len_prefix(8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(what)? as usize);
        }
        Ok(out)
    }

    fn u32_vec(&mut self, what: &'static str) -> Result<Vec<u32>, StoreError> {
        let n = self.len_prefix(4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let b = self.take(4, what)?;
            out.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        Ok(out)
    }

    fn f64_vec(&mut self, what: &'static str) -> Result<Vec<f64>, StoreError> {
        let n = self.len_prefix(8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_bits(self.u64(what)?));
        }
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Verifies the shared header + trailing checksum and returns the payload
/// reader. Error order is deliberate: magic/version/kind fail before the
/// checksum so a non-blob file or a future-format blob gets a precise
/// diagnosis, while any byte flip inside a genuine current-format blob is
/// caught by the checksum.
fn open_blob(blob: &[u8], expected: ArtifactKind) -> Result<Reader<'_>, StoreError> {
    let mut r = Reader::new(blob);
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u16("version")?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let kind = ArtifactKind::from_tag(r.u8("kind")?)?;
    let _reserved = r.u8("reserved")?;
    if blob.len() < r.pos + 8 {
        return Err(StoreError::Truncated { what: "checksum" });
    }
    let body = &blob[..blob.len() - 8];
    let mut tail = [0u8; 8];
    tail.copy_from_slice(&blob[blob.len() - 8..]);
    let stored = u64::from_le_bytes(tail);
    let computed = checksum64(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    if kind != expected {
        return Err(StoreError::KindMismatch {
            expected,
            found: kind,
        });
    }
    // Hand back a reader restricted to the payload.
    Ok(Reader {
        bytes: body,
        pos: r.pos,
    })
}

fn expect_drained(r: &Reader<'_>, what: &'static str) -> Result<(), StoreError> {
    if r.remaining() != 0 {
        return Err(StoreError::LengthMismatch {
            what,
            detail: format!("{} unread payload bytes", r.remaining()),
        });
    }
    Ok(())
}

impl Artifact for CsrMatrix {
    const KIND: ArtifactKind = ArtifactKind::Matrix;

    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(ArtifactKind::Matrix);
        w.u64(self.n_rows() as u64);
        w.u64(self.n_cols() as u64);
        w.u64_slice_of_usize(self.indptr());
        w.u32_slice(self.indices());
        w.f64_slice(self.values());
        w.finish()
    }

    fn decode(blob: &[u8]) -> Result<Self, StoreError> {
        let mut r = open_blob(blob, ArtifactKind::Matrix)?;
        let n_rows = r.u64("n_rows")? as usize;
        let n_cols = r.u64("n_cols")? as usize;
        let indptr = r.usize_vec("indptr")?;
        let indices = r.u32_vec("indices")?;
        let values = r.f64_vec("values")?;
        expect_drained(&r, "matrix payload")?;
        // The PR-5 validators name the violated invariant — this is the
        // last line of defense against a blob whose checksum was forged
        // (or a codec bug), and the reason a corrupt artifact can never
        // reach a kernel.
        validate_parts(n_rows, n_cols, &indptr, &indices, &values)
            .map_err(|(check, detail)| StoreError::CorruptedArtifact { check, detail })?;
        Ok(CsrMatrix::from_raw_parts_unchecked(
            n_rows, n_cols, indptr, indices, values,
        ))
    }
}

impl Artifact for Clustering {
    const KIND: ArtifactKind = ArtifactKind::Clustering;

    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(ArtifactKind::Clustering);
        w.u64(self.n_clusters() as u64);
        w.buf.push(u8::from(self.converged()));
        w.u32_slice(self.assignments());
        w.finish()
    }

    fn decode(blob: &[u8]) -> Result<Self, StoreError> {
        let mut r = open_blob(blob, ArtifactKind::Clustering)?;
        let n_clusters = r.u64("n_clusters")? as usize;
        let converged = match r.u8("converged")? {
            0 => false,
            1 => true,
            other => {
                return Err(StoreError::CorruptedArtifact {
                    check: "converged",
                    detail: format!("converged flag must be 0/1, found {other}"),
                })
            }
        };
        let assignments = r.u32_vec("assignments")?;
        expect_drained(&r, "clustering payload")?;
        // `Clustering` ids are dense in order of first appearance (the
        // only public constructors guarantee it), so re-running the
        // canonical constructor reproduces the artifact exactly — and a
        // cluster-count drift marks the blob corrupt.
        let decoded = Clustering::from_assignments(&assignments).with_converged(converged);
        if decoded.n_clusters() != n_clusters {
            return Err(StoreError::CorruptedArtifact {
                check: "n_clusters",
                detail: format!(
                    "header says {n_clusters} clusters, assignments produce {}",
                    decoded.n_clusters()
                ),
            });
        }
        if decoded.assignments() != assignments {
            return Err(StoreError::CorruptedArtifact {
                check: "assignment_order",
                detail: "assignments are not dense in order of first appearance".into(),
            });
        }
        Ok(decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> CsrMatrix {
        CsrMatrix::from_dense(&[
            vec![0.0, 1.5, 0.0, -0.0],
            vec![2.0, 0.0, 0.25, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 3.0],
        ])
    }

    #[test]
    fn matrix_roundtrips_bit_identically() {
        let m = sample_matrix();
        let blob = m.encode();
        let back = CsrMatrix::decode(&blob).unwrap();
        assert_eq!(m, back);
        assert_eq!(blob, back.encode(), "re-encode must be byte-identical");
    }

    #[test]
    fn clustering_roundtrips_with_converged_flag() {
        for converged in [true, false] {
            let c = Clustering::from_assignments(&[0, 1, 0, 2, 1]).with_converged(converged);
            let blob = c.encode();
            let back = Clustering::decode(&blob).unwrap();
            assert_eq!(c, back);
            assert_eq!(back.converged(), converged);
            assert_eq!(blob, back.encode());
        }
    }

    #[test]
    fn header_errors_are_named() {
        let blob = sample_matrix().encode();

        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(CsrMatrix::decode(&bad_magic), Err(StoreError::BadMagic));

        let mut bad_version = blob.clone();
        bad_version[4] = 0xEE;
        assert!(matches!(
            CsrMatrix::decode(&bad_version),
            Err(StoreError::UnsupportedVersion(_))
        ));

        // A flipped kind byte fails the checksum (the header is covered);
        // a *consistently forged* kind tag is a kind error.
        let mut forged_kind = blob.clone();
        forged_kind[6] = 2;
        let body_len = forged_kind.len() - 8;
        let sum = checksum64(&forged_kind[..body_len]).to_le_bytes();
        forged_kind[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            CsrMatrix::decode(&forged_kind),
            Err(StoreError::KindMismatch { .. })
        ));

        let mut forged_bad_tag = blob.clone();
        forged_bad_tag[6] = 9;
        let sum = checksum64(&forged_bad_tag[..body_len]).to_le_bytes();
        forged_bad_tag[body_len..].copy_from_slice(&sum);
        assert_eq!(
            CsrMatrix::decode(&forged_bad_tag),
            Err(StoreError::BadKind(9))
        );
    }

    #[test]
    fn any_truncation_is_rejected() {
        let blob = sample_matrix().encode();
        for cut in 0..blob.len() {
            let err = CsrMatrix::decode(&blob[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic
                        | StoreError::ChecksumMismatch { .. }
                        | StoreError::LengthMismatch { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn forged_checksum_falls_through_to_the_validator() {
        // Break row-sortedness inside the payload, then re-stamp the
        // checksum: only the CSR validator can catch this, and it must
        // name the violated invariant.
        let m = CsrMatrix::from_dense(&[vec![1.0, 2.0], vec![0.0, 3.0]]);
        let mut blob = m.encode();
        // indices section: header(8) + n_rows(8) + n_cols(8) +
        // indptr(8 + 3*8) + indices_len(8) → first index byte.
        let idx0 = 8 + 8 + 8 + 8 + 3 * 8 + 8;
        blob.swap(idx0, idx0 + 4); // swap cols {0,1} of row 0 → unsorted
        let body_len = blob.len() - 8;
        let sum = checksum64(&blob[..body_len]).to_le_bytes();
        let tail = blob.len() - 8;
        blob[tail..].copy_from_slice(&sum);
        match CsrMatrix::decode(&blob) {
            Err(StoreError::CorruptedArtifact { check, .. }) => {
                assert_eq!(check, "columns");
            }
            other => panic!("expected a named validator error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_length_prefix_cannot_drive_allocation() {
        let m = sample_matrix();
        let mut blob = m.encode();
        // Overwrite the indptr length prefix with u64::MAX and re-stamp
        // the checksum; decode must fail on the bounds check, not OOM.
        let len_at = 8 + 8 + 8;
        blob[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_len = blob.len() - 8;
        let sum = checksum64(&blob[..body_len]).to_le_bytes();
        blob[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            CsrMatrix::decode(&blob),
            Err(StoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn kind_is_checked_against_the_requested_type() {
        let c = Clustering::from_assignments(&[0, 0, 1]);
        let blob = c.encode();
        assert!(matches!(
            CsrMatrix::decode(&blob),
            Err(StoreError::KindMismatch { .. })
        ));
    }

    #[test]
    fn display_messages_name_the_failure() {
        let s = StoreError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        }
        .to_string();
        assert!(s.contains("checksum"));
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        assert!(StoreError::Truncated { what: "indptr" }
            .to_string()
            .contains("indptr"));
    }
}

//! Two-tier artifact cache: in-memory L1 over the disk store.
//!
//! The engine's [`ArtifactCache`] already gives one process in-flight
//! deduplication and O(1) repeat lookups; [`TieredCache`] adds the disk
//! store underneath so the same key is also a hit for a *different*
//! process (or the same daemon after a restart). Lookup order is L1 →
//! disk → compute; a disk hit is promoted into L1, a computed artifact is
//! published to disk (best-effort — a full disk degrades to compute-only,
//! it never fails a request).
//!
//! [`symmetrize_cached`] and [`cluster_cached`] are the kernel-facing
//! entry points shared by the serve daemon and the bench gate's
//! `serve-check`: they derive the content address exactly the way the
//! engine does ([`stage_key`] over the graph fingerprint and
//! `cache_params`), so an artifact computed by a pipeline sweep and one
//! computed by the daemon land on the same key.

use std::sync::Arc;

use symclust_cluster::Clustering;
use symclust_engine::fingerprint::stage_key;
use symclust_engine::{ArtifactCache, Clusterer, SymMethod};
use symclust_graph::{DiGraph, UnGraph};
use symclust_obs::MetricsRegistry;
use symclust_sparse::{CancelToken, CsrMatrix};

use crate::codec::Artifact;
use crate::disk::DiskStore;

/// Which tier satisfied a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Served from the in-memory L1 cache (including parking behind an
    /// in-flight computation of the same key).
    Memory,
    /// Served from a verified on-disk blob; no kernel ran.
    Disk,
    /// Computed by the kernels (and published to disk).
    Computed,
}

impl Tier {
    /// Stable lowercase name for responses and logs.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Memory => "memory",
            Tier::Disk => "disk",
            Tier::Computed => "computed",
        }
    }

    /// Whether the request was served without running a kernel.
    pub fn is_hit(self) -> bool {
        !matches!(self, Tier::Computed)
    }
}

/// An L1 in-memory cache stacked on the shared disk store.
///
/// One `TieredCache` exists per artifact type (the daemon holds one for
/// matrices and one for clusterings); the [`DiskStore`] behind them is
/// shared.
pub struct TieredCache<T> {
    l1: ArtifactCache<T>,
    disk: Arc<DiskStore>,
}

impl<T: Artifact> TieredCache<T> {
    /// Builds an empty L1 over `disk`.
    pub fn new(disk: Arc<DiskStore>) -> Self {
        TieredCache {
            l1: ArtifactCache::new(),
            disk,
        }
    }

    /// The disk store backing this cache.
    pub fn disk(&self) -> &Arc<DiskStore> {
        &self.disk
    }

    /// The in-memory L1 cache (for stats).
    pub fn l1(&self) -> &ArtifactCache<T> {
        &self.l1
    }

    /// Looks `key` up without computing: L1 first, then the disk store
    /// (promoting a disk hit into L1).
    pub fn get(&self, key: u64) -> Option<(Arc<T>, Tier)> {
        if let Some(v) = self.l1.get(key) {
            return Some((v, Tier::Memory));
        }
        let from_disk = self.disk.load::<T>(key)?;
        // Promote through get_or_compute so a concurrent requester of the
        // same key dedups instead of re-reading the blob.
        match self.l1.get_or_compute(key, || Ok::<_, ()>(from_disk)) {
            Ok((v, _)) => Some((v, Tier::Disk)),
            Err(()) => None,
        }
    }

    /// Returns the artifact for `key`, trying L1, then the verified disk
    /// store, then `compute`. A computed artifact is published to disk;
    /// publication failure is absorbed (counted as `store.put_errors`) —
    /// the artifact is still returned and cached in memory.
    pub fn get_or_compute<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, Tier), E> {
        let mut tier = Tier::Computed;
        let (value, l1_hit) = self.l1.get_or_compute(key, || {
            if let Some(v) = self.disk.load::<T>(key) {
                tier = Tier::Disk;
                return Ok(v);
            }
            let v = compute()?;
            // Best-effort publication: the store counts failures.
            let _ = self.disk.put(key, &v);
            Ok(v)
        })?;
        Ok((value, if l1_hit { Tier::Memory } else { tier }))
    }
}

/// Content address of a symmetrization artifact: the engine's
/// `stage_key` over the graph fingerprint, the method's stage name, and
/// its parameter vector (budget included when the method uses one).
pub fn symmetrize_key(graph_fp: u64, method: &SymMethod, nnz_budget: Option<usize>) -> u64 {
    let (stage, params) = method.cache_params_with_budget(nnz_budget);
    stage_key(graph_fp, stage, &params)
}

/// Content address of a clustering artifact, chained off the
/// symmetrization key so the full pipeline provenance is in the address.
pub fn cluster_key(sym_key: u64, clusterer: &Clusterer) -> u64 {
    let (stage, params) = clusterer.cache_params();
    stage_key(sym_key, stage, &params)
}

/// Symmetrizes `g` with `method` through the tiered cache. On any hit
/// ([`Tier::is_hit`]) no kernel runs — in particular `spgemm.calls` stays
/// untouched for the similarity methods. Returns the symmetrized
/// adjacency, the tier that served it, and the artifact key.
pub fn symmetrize_cached(
    cache: &TieredCache<CsrMatrix>,
    g: &DiGraph,
    graph_fp: u64,
    method: &SymMethod,
    nnz_budget: Option<usize>,
    token: &CancelToken,
    metrics: Option<&MetricsRegistry>,
) -> symclust_core::Result<(Arc<CsrMatrix>, Tier, u64)> {
    let key = symmetrize_key(graph_fp, method, nnz_budget);
    let (matrix, tier) = cache.get_or_compute(key, || -> symclust_core::Result<CsrMatrix> {
        let sym = method.symmetrize_observed_with_budget(g, token, nnz_budget, metrics)?;
        Ok(sym.into_graph().into_adjacency())
    })?;
    Ok((matrix, tier, key))
}

/// Clusters the symmetrized graph `sym` (whose artifact key is
/// `sym_key`) with `clusterer` through the tiered cache. `sym` is only
/// consulted on a full miss; hits run no clustering kernel.
pub fn cluster_cached(
    cache: &TieredCache<Clustering>,
    sym: &UnGraph,
    sym_key: u64,
    clusterer: &Clusterer,
    token: &CancelToken,
    metrics: Option<&MetricsRegistry>,
) -> symclust_cluster::Result<(Arc<Clustering>, Tier, u64)> {
    let key = cluster_key(sym_key, clusterer);
    let (clustering, tier) =
        cache.get_or_compute(key, || clusterer.cluster_observed(sym, token, metrics))?;
    Ok((clustering, tier, key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::StoreOptions;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use symclust_engine::fingerprint::graph_fingerprint;
    use symclust_graph::generators::figure1_graph;
    use symclust_obs::MetricsRegistry;

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_store(tag: &str) -> (Arc<DiskStore>, PathBuf) {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "symclust_tiered_test_{}_{tag}_{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(DiskStore::open(&dir, StoreOptions::default()).unwrap());
        (store, dir)
    }

    #[test]
    fn tiers_progress_computed_memory_disk() {
        let (store, dir) = temp_store("tiers");
        let cache: TieredCache<CsrMatrix> = TieredCache::new(Arc::clone(&store));
        let m = CsrMatrix::from_dense(&[vec![0.0, 1.0], vec![1.0, 0.0]]);

        let (_, tier) = cache.get_or_compute(1, || Ok::<_, ()>(m.clone())).unwrap();
        assert_eq!(tier, Tier::Computed);
        let (_, tier) = cache
            .get_or_compute(1, || panic!("must not recompute"))
            .unwrap_or_else(|_: ()| unreachable!());
        assert_eq!(tier, Tier::Memory);

        // A fresh L1 over the same store models a daemon restart: the
        // artifact must come back from disk, not from a kernel.
        let cache2: TieredCache<CsrMatrix> = TieredCache::new(Arc::clone(&store));
        let (v, tier) = cache2
            .get_or_compute(1, || panic!("must not recompute"))
            .unwrap_or_else(|_: ()| unreachable!());
        assert_eq!(tier, Tier::Disk);
        assert_eq!(*v, m);
        // And the promotion makes the next lookup a memory hit.
        let (_, tier) = cache2.get(1).unwrap();
        assert_eq!(tier, Tier::Memory);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compute_error_is_propagated_and_not_cached() {
        let (store, dir) = temp_store("error");
        let cache: TieredCache<CsrMatrix> = TieredCache::new(store);
        let err = cache
            .get_or_compute(3, || Err::<CsrMatrix, _>("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.get(3).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn symmetrize_cached_hits_skip_the_kernel() {
        let (store, dir) = temp_store("sym");
        let metrics = MetricsRegistry::new();
        let g = figure1_graph();
        let fp = graph_fingerprint(&g);
        let method = SymMethod::Bibliometric { threshold: 0.0 };
        let token = CancelToken::new();

        let cache: TieredCache<CsrMatrix> = TieredCache::new(Arc::clone(&store));
        let (cold, tier, key) =
            symmetrize_cached(&cache, &g, fp, &method, None, &token, Some(&metrics)).unwrap();
        assert_eq!(tier, Tier::Computed);
        let spgemm_after_cold = metrics.counter("spgemm.calls").get();
        assert!(spgemm_after_cold > 0, "bibliometric must run SpGEMM cold");

        // Restart (fresh L1, same disk): same key, same bytes, no SpGEMM.
        let cache2: TieredCache<CsrMatrix> = TieredCache::new(Arc::clone(&store));
        let (warm, tier, key2) =
            symmetrize_cached(&cache2, &g, fp, &method, None, &token, Some(&metrics)).unwrap();
        assert_eq!(tier, Tier::Disk);
        assert_eq!(key, key2);
        assert_eq!(*warm, *cold);
        assert_eq!(
            metrics.counter("spgemm.calls").get(),
            spgemm_after_cold,
            "a store hit must not run SpGEMM"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_cached_roundtrips_and_chains_keys() {
        let (store, dir) = temp_store("cluster");
        let g = figure1_graph();
        let fp = graph_fingerprint(&g);
        let token = CancelToken::new();
        let sym_cache: TieredCache<CsrMatrix> = TieredCache::new(Arc::clone(&store));
        let (adj, _, sym_key) = symmetrize_cached(
            &sym_cache,
            &g,
            fp,
            &SymMethod::PlusTranspose,
            None,
            &token,
            None,
        )
        .unwrap();
        let ungraph = UnGraph::from_symmetric_unchecked((*adj).clone());
        let clusterer = Clusterer::Metis { k: 2 };

        let cl_cache: TieredCache<Clustering> = TieredCache::new(Arc::clone(&store));
        let (c1, tier, ckey) =
            cluster_cached(&cl_cache, &ungraph, sym_key, &clusterer, &token, None).unwrap();
        assert_eq!(tier, Tier::Computed);
        assert_ne!(ckey, sym_key, "cluster key must chain off the sym key");

        let cl_cache2: TieredCache<Clustering> = TieredCache::new(Arc::clone(&store));
        let (c2, tier, _) =
            cluster_cached(&cl_cache2, &ungraph, sym_key, &clusterer, &token, None).unwrap();
        assert_eq!(tier, Tier::Disk);
        assert_eq!(*c1, *c2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancelled_token_fails_a_cold_request_but_not_a_hit() {
        let (store, dir) = temp_store("cancel");
        let g = figure1_graph();
        let fp = graph_fingerprint(&g);
        let method = SymMethod::PlusTranspose;
        let cancelled = CancelToken::new();
        cancelled.cancel();

        let cache: TieredCache<CsrMatrix> = TieredCache::new(Arc::clone(&store));
        let err = symmetrize_cached(&cache, &g, fp, &method, None, &cancelled, None).unwrap_err();
        assert!(err.is_cancelled());

        // Warm the store, then a cancelled token still gets the hit: no
        // kernel runs, so there is nothing to cancel.
        let token = CancelToken::new();
        symmetrize_cached(&cache, &g, fp, &method, None, &token, None).unwrap();
        let cache2: TieredCache<CsrMatrix> = TieredCache::new(Arc::clone(&store));
        let (_, tier, _) =
            symmetrize_cached(&cache2, &g, fp, &method, None, &cancelled, None).unwrap();
        assert_eq!(tier, Tier::Disk);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_changes_the_artifact_address_for_similarity_methods() {
        let method = SymMethod::Bibliometric { threshold: 0.0 };
        assert_ne!(
            symmetrize_key(1, &method, None),
            symmetrize_key(1, &method, Some(10)),
        );
        assert_eq!(
            symmetrize_key(1, &SymMethod::PlusTranspose, None),
            symmetrize_key(1, &SymMethod::PlusTranspose, Some(10)),
            "A+A' ignores the budget, so its address must too"
        );
    }
}

#![warn(missing_docs)]

//! symclust-store: a disk-backed, content-addressed artifact store.
//!
//! The engine's in-memory [`ArtifactCache`](symclust_engine::ArtifactCache)
//! makes one *sweep* cheap; this crate makes one *deployment* cheap. An
//! artifact — a symmetrized adjacency matrix or a finished clustering — is
//! serialized into a versioned, length-prefixed, checksummed binary blob
//! ([`codec`]) and published under its content-addressed fingerprint with
//! atomic write-then-rename ([`disk::DiskStore`]). A later process (or a
//! restarted daemon) that derives the same key serves the blob without
//! touching a kernel.
//!
//! Integrity is never assumed: every load re-verifies the blob checksum
//! and the CSR structural invariants
//! ([`CsrMatrix::validate`](symclust_sparse::CsrMatrix)); a blob that
//! fails either check is moved to a quarantine directory and reported as
//! a miss, so corrupt data is recomputed, never served.
//!
//! [`tiered::TieredCache`] stacks the two layers — L1 in-memory cache
//! (with in-flight dedup) over the disk store — and
//! [`tiered::symmetrize_cached`] / [`tiered::cluster_cached`] are the
//! kernel-facing entry points the serve daemon and the bench gate share.

pub mod codec;
pub mod disk;
pub mod faultfs;
pub mod tiered;

pub use codec::{Artifact, ArtifactKind, StoreError};
pub use disk::{DiskStore, StoreOptions, StoreStats};
pub use tiered::{
    cluster_cached, cluster_key, symmetrize_cached, symmetrize_key, Tier, TieredCache,
};

/// Metric names recorded by the store (documented in DESIGN.md §11).
pub mod metric_names {
    /// Counter: loads served from an intact on-disk blob.
    pub const STORE_HITS: &str = "store.hits";
    /// Counter: loads that found no blob (or a quarantined one).
    pub const STORE_MISSES: &str = "store.misses";
    /// Counter: blobs published (atomic write-then-rename completed).
    pub const STORE_PUTS: &str = "store.puts";
    /// Counter: blobs deleted by the LRU size-budget sweep.
    pub const STORE_EVICTIONS: &str = "store.evictions";
    /// Counter: blobs that failed checksum/validator checks on load and
    /// were moved to the quarantine directory.
    pub const STORE_QUARANTINED: &str = "store.quarantined";
    /// Counter: publish attempts that failed at the filesystem layer
    /// (the computed artifact is still returned to the caller).
    pub const STORE_PUT_ERRORS: &str = "store.put_errors";
    /// Counter: failed attempts to persist the `stats.json` sidecar
    /// (write or rename error; the in-memory counters stay authoritative).
    pub const STORE_STATS_PERSIST_ERRORS: &str = "store.stats_persist_errors";
    /// Gauge: total bytes of published blobs currently on disk.
    pub const STORE_BYTES: &str = "store.bytes";
    /// Gauge: 1 while the store is in `ENOSPC` degraded mode (publication
    /// suspended, hits still served), 0 otherwise.
    pub const STORE_DEGRADED: &str = "store.degraded";
}

//! Property tests for the store's binary codec.
//!
//! Same discipline as `proptest_syrk.rs`: inputs come from a hand-rolled
//! deterministic 64-bit LCG, so every run — any machine, any thread
//! count — exercises byte-for-byte the same artifacts. Two properties
//! are load-bearing for the serving story:
//!
//! 1. **Bit-identical round-trips.** `decode(encode(x)) == x` and
//!    `encode(decode(encode(x))) == encode(x)` — the daemon's promise of
//!    byte-identical responses across connections and restarts rests on
//!    the codec being a bijection on its image.
//! 2. **Every single-byte corruption is rejected, with a named error.**
//!    Flipping any one byte of a blob must surface `BadMagic`,
//!    `UnsupportedVersion`, `ChecksumMismatch`, … — never a successfully
//!    decoded wrong artifact, and never a panic.

use symclust_cluster::Clustering;
use symclust_sparse::CsrMatrix;
use symclust_store::codec::checksum64;
use symclust_store::{Artifact, StoreError};

/// Minimal deterministic generator: Knuth's 64-bit LCG constants.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

const SEEDS: [u64; 4] = [
    0x243F6A8885A308D3,
    0x9E3779B97F4A7C15,
    0xB7E151628AED2A6A,
    0x452821E638D01377,
];

/// Random sparse matrix with awkward values (negatives, -0.0, subnormal
/// magnitudes) — the codec stores bit patterns, so all must survive.
fn random_matrix(n_rows: usize, n_cols: usize, seed: u64) -> CsrMatrix {
    let mut rng = Lcg(seed);
    let mut rows = vec![vec![0.0f64; n_cols]; n_rows];
    for row in rows.iter_mut() {
        for v in row.iter_mut() {
            let r = rng.next();
            if r.is_multiple_of(4) {
                *v = match (r >> 8) % 5 {
                    0 => ((r >> 32) % 16 + 1) as f64 * 0.125,
                    1 => -(((r >> 32) % 16 + 1) as f64) * 0.25,
                    2 => -0.0,
                    3 => f64::MIN_POSITIVE * ((r >> 32) % 7 + 1) as f64,
                    _ => ((r >> 32) % 1000) as f64 + 0.5,
                };
            }
        }
    }
    CsrMatrix::from_dense(&rows)
}

fn random_clustering(n_nodes: usize, seed: u64) -> Clustering {
    let mut rng = Lcg(seed);
    let raw: Vec<u32> = (0..n_nodes).map(|_| (rng.next() % 7) as u32).collect();
    Clustering::from_assignments(&raw).with_converged(rng.next().is_multiple_of(2))
}

#[test]
fn matrix_roundtrip_is_bit_identical() {
    for (case, &seed) in SEEDS.iter().enumerate() {
        for (n_rows, n_cols) in [(1, 1), (7, 13), (40, 25), (64, 64)] {
            let m = random_matrix(n_rows, n_cols, seed ^ (n_rows as u64) << 32);
            let blob = m.encode();
            let back = CsrMatrix::decode(&blob)
                .unwrap_or_else(|e| panic!("case {case} {n_rows}x{n_cols}: {e}"));
            assert_eq!(m, back, "case {case}");
            assert_eq!(
                m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                back.values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "case {case}: value bit patterns (incl. -0.0) must survive"
            );
            assert_eq!(blob, back.encode(), "case {case}: re-encode must match");
        }
    }
}

#[test]
fn clustering_roundtrip_is_bit_identical() {
    for &seed in &SEEDS {
        for n in [0usize, 1, 5, 33, 200] {
            let c = random_clustering(n, seed ^ n as u64);
            let blob = c.encode();
            let back = Clustering::decode(&blob).unwrap();
            assert_eq!(c, back);
            assert_eq!(blob, back.encode());
        }
    }
}

#[test]
fn empty_and_degenerate_matrices_roundtrip() {
    for m in [
        CsrMatrix::from_dense(&[]),
        CsrMatrix::from_dense(&[vec![]]),
        CsrMatrix::from_dense(&[vec![0.0, 0.0], vec![0.0, 0.0]]),
    ] {
        let blob = m.encode();
        assert_eq!(CsrMatrix::decode(&blob).unwrap(), m);
    }
}

/// Every single-byte flip (all 8 bit positions sampled via 0xFF XOR, plus
/// two single-bit flips) must be rejected with a named error. The header
/// fields can fail on their own named variants; everything else must be
/// caught by the checksum.
#[test]
fn every_single_byte_corruption_of_a_matrix_blob_is_rejected() {
    let m = random_matrix(12, 9, SEEDS[0]);
    let blob = m.encode();
    for pos in 0..blob.len() {
        for mask in [0xFFu8, 0x01, 0x80] {
            let mut bad = blob.clone();
            bad[pos] ^= mask;
            match CsrMatrix::decode(&bad) {
                Ok(_) => panic!("corruption at byte {pos} (mask {mask:#x}) decoded"),
                Err(
                    StoreError::BadMagic
                    | StoreError::UnsupportedVersion(_)
                    | StoreError::BadKind(_)
                    | StoreError::KindMismatch { .. }
                    | StoreError::ChecksumMismatch { .. },
                ) => {}
                Err(other) => panic!(
                    "corruption at byte {pos} (mask {mask:#x}): expected a named \
                     header/checksum error, got {other:?}"
                ),
            }
        }
    }
}

#[test]
fn every_single_byte_corruption_of_a_clustering_blob_is_rejected() {
    let c = random_clustering(50, SEEDS[1]);
    let blob = c.encode();
    for pos in 0..blob.len() {
        let mut bad = blob.clone();
        bad[pos] ^= 0xFF;
        assert!(
            Clustering::decode(&bad).is_err(),
            "corruption at byte {pos} decoded successfully"
        );
    }
}

/// A corrupted payload whose checksum is re-forged to match must still be
/// rejected — by the CSR structural validators, with the violated
/// invariant named. (This is the defense the quarantine path relies on:
/// the checksum catches random corruption, the validator catches
/// everything that *looks* like a valid blob but isn't a valid matrix.)
#[test]
fn forged_checksum_corruptions_are_caught_by_the_validator() {
    let m = random_matrix(10, 10, SEEDS[2]);
    let blob = m.encode();
    let mut rng = Lcg(SEEDS[3]);
    let mut validator_rejections = 0usize;
    for _ in 0..400 {
        let pos = 8 + (rng.next() as usize) % (blob.len() - 16); // inside body, past header
        let mask = (rng.next() % 255 + 1) as u8;
        let mut bad = blob.clone();
        bad[pos] ^= mask;
        let body_len = bad.len() - 8;
        let sum = checksum64(&bad[..body_len]).to_le_bytes();
        bad[body_len..].copy_from_slice(&sum);
        match CsrMatrix::decode(&bad) {
            Ok(decoded) => {
                // A flip confined to a value's bit pattern yields a
                // different-but-structurally-valid matrix; that is fine —
                // content addressing means this blob lives under a key
                // nobody will ever derive. It must never equal the
                // original, though.
                assert_ne!(decoded.encode(), blob, "corruption produced the original");
            }
            Err(
                StoreError::CorruptedArtifact { .. }
                | StoreError::LengthMismatch { .. }
                | StoreError::Truncated { .. }
                | StoreError::BadKind(_)
                | StoreError::KindMismatch { .. }
                | StoreError::UnsupportedVersion(_)
                | StoreError::BadMagic,
            ) => validator_rejections += 1,
            Err(StoreError::ChecksumMismatch { .. }) => {
                panic!("checksum was forged to match; it cannot mismatch")
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(
        validator_rejections > 0,
        "no forged corruption reached the structural validator"
    );
}

#[test]
fn every_truncation_is_rejected() {
    let m = random_matrix(6, 6, SEEDS[3]);
    let blob = m.encode();
    for cut in 0..blob.len() {
        assert!(
            CsrMatrix::decode(&blob[..cut]).is_err(),
            "truncation to {cut} bytes decoded successfully"
        );
    }
}

#[test]
fn distinct_artifacts_have_distinct_blobs() {
    // Content addressing sanity: the codec must not collapse distinct
    // matrices onto one encoding.
    let mut blobs = std::collections::HashSet::new();
    for &seed in &SEEDS {
        for shape in [(5, 5), (5, 6), (6, 5)] {
            let m = random_matrix(shape.0, shape.1, seed);
            assert!(blobs.insert(m.encode()), "duplicate blob for {shape:?}");
        }
    }
}

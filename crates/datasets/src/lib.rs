#![warn(missing_docs)]

//! # symclust-datasets — synthetic stand-ins for the paper's datasets
//!
//! The paper evaluates on Wikipedia (Jan-2008 dump), Cora, Flickr and
//! LiveJournal (Table 1). None of those corpora can ship with this
//! repository, and the paper itself notes the lack of synthetic directed
//! generators with ground-truth clusters as an open problem — so this crate
//! *is* that generator, instantiated per dataset: each stand-in is a
//! shared-link DSBM (see `symclust_graph::generators::dsbm`) whose knobs are
//! tuned to the published characteristics of the original:
//!
//! | stand-in | reciprocity | categories | unlabeled | overlap | hubs |
//! |----------|------------:|-----------:|----------:|--------:|-----:|
//! | [`cora_like`] | 7.7% | 70 | 20% | none | mild |
//! | [`wikipedia_like`] | 42.1% | scaled | 35% | 25% | heavy |
//! | [`flickr_like`] | 62.4% | (timing only) | — | — | heavy |
//! | [`livejournal_like`] | 73.4% | (timing only) | — | — | heavy |
//!
//! Node counts are scaled down from millions to laptop scale (the paper's
//! phenomena — hub-induced density in the Bibliometric matrix, prunability
//! of Degree-discounted, shared-link cluster recovery — are driven by the
//! *shape* of the degree distribution and cluster structure, not the raw
//! size). Every constructor takes a node-count override for scalability
//! sweeps.

pub mod stream;

use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};
use symclust_graph::{DiGraph, GroundTruth};

/// A named dataset: directed graph plus optional ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (for experiment tables).
    pub name: String,
    /// The directed graph.
    pub graph: DiGraph,
    /// Ground-truth categories; `None` for the timing-only datasets, as in
    /// the paper ("we use these datasets only for scalability evaluation").
    pub truth: Option<GroundTruth>,
    /// The full planted assignment (available in the synthetic setting even
    /// when `truth` is withheld; used only by tests).
    pub planted: Vec<u32>,
}

impl Dataset {
    fn from_config(name: &str, cfg: &SharedLinkDsbmConfig, keep_truth: bool) -> Dataset {
        let generated = shared_link_dsbm(cfg).expect("generator config is valid");
        Dataset {
            name: name.to_string(),
            graph: generated.graph,
            truth: keep_truth.then_some(generated.truth),
            planted: generated.planted,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.graph.n_edges()
    }
}

fn recip(percent: f64) -> f64 {
    SharedLinkDsbmConfig::reciprocal_prob_for_percent_symmetric(percent)
}

/// Configuration of the Cora stand-in at a given node count.
///
/// Cora: 17,604 papers, 77,171 citations, 7.7% symmetric links, 70 leaf
/// categories, 20% unlabeled. Citation graphs have mild hubs (seminal
/// papers), moderate intra-cluster citation, and strong shared-reference
/// structure (papers in a field cite the same prior work).
pub fn cora_like_config(n_nodes: usize) -> SharedLinkDsbmConfig {
    SharedLinkDsbmConfig {
        n_nodes,
        n_clusters: 70,
        signature_out: 8,
        signature_in: 5,
        p_signature: 0.55,
        p_intra: 0.9_f64.min(30.0 / (n_nodes as f64 / 70.0).powi(2)),
        noise_out_mean: 2,
        noise_exponent: 2.5,
        n_hubs: 6,
        p_to_hub: 0.08,
        hub_out_degree: 30,
        p_reciprocal: recip(7.7),
        overlap_fraction: 0.0,
        unlabeled_fraction: 0.20,
        seed: 0xC08A,
    }
}

/// The Cora stand-in at its default scale (2,100 nodes ≈ 1/8 of Cora,
/// keeping the paper's 70 leaf categories and ~4.4 edges/node).
pub fn cora_like() -> Dataset {
    Dataset::from_config("cora_like", &cora_like_config(2100), true)
}

/// The Cora stand-in at a custom node count.
pub fn cora_like_scaled(n_nodes: usize) -> Dataset {
    Dataset::from_config("cora_like", &cora_like_config(n_nodes), true)
}

/// Configuration of the Wikipedia stand-in at a given node count.
///
/// Wikipedia: 1.13M articles, 67M hyperlinks, 42.1% symmetric, 17,950
/// overlapping categories, 35% unlabeled, pronounced hub structure
/// ("Area", "Population density", ... with in-degrees in the tens of
/// thousands). The category count scales with n (the paper has ~63 pages
/// per category; we keep ~60).
pub fn wikipedia_like_config(n_nodes: usize) -> SharedLinkDsbmConfig {
    let n_clusters = (n_nodes / 60).max(10);
    SharedLinkDsbmConfig {
        n_nodes,
        n_clusters,
        signature_out: 10,
        signature_in: 6,
        p_signature: 0.6,
        p_intra: 0.4_f64.min(8.0 / (n_nodes as f64 / n_clusters as f64)),
        noise_out_mean: 6,
        noise_exponent: 2.1,
        n_hubs: (n_nodes / 400).max(4),
        p_to_hub: 0.35,
        hub_out_degree: (n_nodes / 40).max(25),
        p_reciprocal: recip(42.1),
        overlap_fraction: 0.25,
        unlabeled_fraction: 0.35,
        seed: 0x2171,
    }
}

/// The Wikipedia stand-in at its default scale (9,000 nodes, 150
/// categories).
pub fn wikipedia_like() -> Dataset {
    Dataset::from_config("wikipedia_like", &wikipedia_like_config(9000), true)
}

/// The Wikipedia stand-in at a custom node count.
pub fn wikipedia_like_scaled(n_nodes: usize) -> Dataset {
    Dataset::from_config("wikipedia_like", &wikipedia_like_config(n_nodes), true)
}

/// Configuration of the Flickr stand-in (timing only, 62.4% reciprocity,
/// relatively sparse: 12 edges/node in the original).
pub fn flickr_like_config(n_nodes: usize) -> SharedLinkDsbmConfig {
    let n_clusters = (n_nodes / 80).max(10);
    SharedLinkDsbmConfig {
        n_nodes,
        n_clusters,
        signature_out: 6,
        signature_in: 6,
        p_signature: 0.5,
        p_intra: 0.3_f64.min(6.0 / (n_nodes as f64 / n_clusters as f64)),
        noise_out_mean: 4,
        noise_exponent: 2.1,
        n_hubs: (n_nodes / 500).max(4),
        p_to_hub: 0.25,
        hub_out_degree: (n_nodes / 50).max(20),
        p_reciprocal: recip(62.4),
        overlap_fraction: 0.0,
        unlabeled_fraction: 0.0,
        seed: 0xF11C8,
    }
}

/// The Flickr stand-in at its default scale (15,000 nodes), ground truth
/// withheld as in the paper.
pub fn flickr_like() -> Dataset {
    Dataset::from_config("flickr_like", &flickr_like_config(15_000), false)
}

/// The Flickr stand-in at a custom node count.
pub fn flickr_like_scaled(n_nodes: usize) -> Dataset {
    Dataset::from_config("flickr_like", &flickr_like_config(n_nodes), false)
}

/// Configuration of the LiveJournal stand-in (timing only, 73.4%
/// reciprocity, ~15 edges/node in the original).
pub fn livejournal_like_config(n_nodes: usize) -> SharedLinkDsbmConfig {
    let n_clusters = (n_nodes / 100).max(10);
    SharedLinkDsbmConfig {
        n_nodes,
        n_clusters,
        signature_out: 6,
        signature_in: 6,
        p_signature: 0.5,
        p_intra: 0.3_f64.min(10.0 / (n_nodes as f64 / n_clusters as f64)),
        noise_out_mean: 5,
        noise_exponent: 2.2,
        n_hubs: (n_nodes / 600).max(4),
        p_to_hub: 0.2,
        hub_out_degree: (n_nodes / 60).max(20),
        p_reciprocal: recip(73.4),
        overlap_fraction: 0.0,
        unlabeled_fraction: 0.0,
        seed: 0x11FE,
    }
}

/// The LiveJournal stand-in at its default scale (20,000 nodes), ground
/// truth withheld as in the paper.
pub fn livejournal_like() -> Dataset {
    Dataset::from_config("livejournal_like", &livejournal_like_config(20_000), false)
}

/// The LiveJournal stand-in at a custom node count.
pub fn livejournal_like_scaled(n_nodes: usize) -> Dataset {
    Dataset::from_config("livejournal_like", &livejournal_like_config(n_nodes), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::stats::percent_symmetric_links;

    #[test]
    fn cora_like_matches_published_shape() {
        let d = cora_like();
        assert_eq!(d.n_nodes(), 2100);
        assert_eq!(d.truth.as_ref().unwrap().n_categories(), 70);
        let unl = d.truth.as_ref().unwrap().unlabeled_fraction();
        assert!((unl - 0.20).abs() < 0.05, "unlabeled {unl}");
        let ps = percent_symmetric_links(&d.graph);
        assert!((ps - 7.7).abs() < 5.0, "reciprocity {ps}%");
    }

    #[test]
    fn wikipedia_like_matches_published_shape() {
        let d = wikipedia_like_scaled(3000);
        let ps = percent_symmetric_links(&d.graph);
        assert!((ps - 42.1).abs() < 8.0, "reciprocity {ps}%");
        let truth = d.truth.as_ref().unwrap();
        assert_eq!(truth.n_categories(), 50);
        assert!((truth.unlabeled_fraction() - 0.35).abs() < 0.05);
        // Overlapping membership exists.
        let multi = truth
            .node_categories()
            .iter()
            .filter(|c| c.len() > 1)
            .count();
        assert!(multi > 0);
    }

    #[test]
    fn timing_datasets_withhold_truth() {
        let f = flickr_like_scaled(2000);
        assert!(f.truth.is_none());
        assert!(!f.planted.is_empty());
        let l = livejournal_like_scaled(2000);
        assert!(l.truth.is_none());
    }

    #[test]
    fn reciprocity_ordering_matches_table1() {
        // Cora < Wikipedia < Flickr < LiveJournal, as in Table 1.
        let sizes = 2500;
        let c = percent_symmetric_links(&cora_like_scaled(sizes).graph);
        let w = percent_symmetric_links(&wikipedia_like_scaled(sizes).graph);
        let f = percent_symmetric_links(&flickr_like_scaled(sizes).graph);
        let l = percent_symmetric_links(&livejournal_like_scaled(sizes).graph);
        assert!(c < w && w < f && f < l, "{c} {w} {f} {l}");
    }

    #[test]
    fn wikipedia_like_has_hubs() {
        let d = wikipedia_like_scaled(3000);
        let in_deg = d.graph.in_degrees();
        let max_in = *in_deg.iter().max().unwrap();
        let mean_in = in_deg.iter().sum::<usize>() as f64 / in_deg.len() as f64;
        assert!(
            max_in as f64 > 20.0 * mean_in,
            "max in-degree {max_in} vs mean {mean_in:.1}"
        );
    }

    #[test]
    fn scaling_changes_node_count_proportionally() {
        let small = cora_like_scaled(700);
        let large = cora_like_scaled(1400);
        assert_eq!(small.n_nodes(), 700);
        assert_eq!(large.n_nodes(), 1400);
        // Edge count grows at least linearly with nodes.
        assert!(large.n_edges() > small.n_edges());
    }

    #[test]
    fn wikipedia_category_count_tracks_size() {
        let a = wikipedia_like_scaled(1800);
        let b = wikipedia_like_scaled(3600);
        let ca = a.truth.as_ref().unwrap().n_categories();
        let cb = b.truth.as_ref().unwrap().n_categories();
        assert_eq!(ca, 30);
        assert_eq!(cb, 60);
    }

    #[test]
    fn dataset_names_are_stable() {
        assert_eq!(cora_like_scaled(500).name, "cora_like");
        assert_eq!(wikipedia_like_scaled(500).name, "wikipedia_like");
        assert_eq!(flickr_like_scaled(500).name, "flickr_like");
        assert_eq!(livejournal_like_scaled(500).name, "livejournal_like");
    }

    #[test]
    fn configs_are_exposed_and_consistent() {
        let cfg = cora_like_config(2100);
        assert_eq!(cfg.n_clusters, 70);
        assert!((cfg.unlabeled_fraction - 0.20).abs() < 1e-12);
        let cfg = wikipedia_like_config(9000);
        assert!((cfg.overlap_fraction - 0.25).abs() < 1e-12);
        assert!(cfg.n_hubs >= 4);
        let cfg = flickr_like_config(1000);
        assert!(cfg.p_reciprocal > 0.4); // 62.4% symmetric → q ≈ 0.454
        let cfg = livejournal_like_config(1000);
        assert!(cfg.p_reciprocal > 0.5); // 73.4% symmetric → q ≈ 0.580
    }

    #[test]
    fn mean_degree_in_realistic_band() {
        // Table 1 originals range from ~4 (Cora) to ~60 (Wikipedia) mean
        // total degree; the stand-ins should be in a comparable band.
        for d in [
            cora_like_scaled(1000),
            wikipedia_like_scaled(1000),
            flickr_like_scaled(1000),
            livejournal_like_scaled(1000),
        ] {
            let mean = 2.0 * d.n_edges() as f64 / d.n_nodes() as f64;
            assert!((3.0..=150.0).contains(&mean), "{}: {mean}", d.name);
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = cora_like_scaled(800);
        let b = cora_like_scaled(800);
        assert_eq!(a.graph.adjacency(), b.graph.adjacency());
    }
}

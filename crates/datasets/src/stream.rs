//! Streaming graph generators for out-of-core experiments.
//!
//! The in-memory generators ([`shared_link_dsbm`], `kronecker`) materialize
//! the whole edge set before writing it out, which caps them at graphs that
//! fit in RAM — useless for exercising the out-of-core SpGEMM panel path,
//! whose whole point is inputs *larger* than the memory budget. The
//! generators here write edge-list files of (in principle) arbitrary size
//! while holding only **one source node's out-neighborhood** in memory at a
//! time: they iterate sources in ascending order and derive every sampling
//! decision from a counter-mode hash of `(seed, source, edge index, …)`, so
//! the output is a pure function of the configuration — no RNG state to
//! carry, no edge set to deduplicate globally.
//!
//! Output is compatible with the strict edge-list loader
//! (`symclust_graph::io::read_edge_list`): a `# symclust edge list` header,
//! one `u v` pair per line, no self-loops, no duplicate pairs (targets are
//! deduplicated per source; distinct sources cannot collide). The DSBM
//! generator also writes the planted assignment in the CLI's ground-truth
//! format so the full pipeline — symmetrize, cluster, F-score — runs
//! end-to-end on a streamed graph.
//!
//! [`shared_link_dsbm`]: symclust_graph::generators::shared_link_dsbm

use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// SplitMix64: the per-decision hash behind both generators. Passing the
/// same inputs always yields the same 64-bit output, which is what makes
/// the streams deterministic without carried RNG state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash of an arbitrary-length key, for per-(seed, node, index, …)
/// decisions.
fn hash_key(parts: &[u64]) -> u64 {
    let mut h = 0x517C_C1B7_2722_0A95_u64;
    for &p in parts {
        h = mix(h ^ p);
    }
    h
}

/// Uniform f64 in `[0, 1)` from a hash value.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Configuration for [`stream_dsbm`]: a streaming planted-partition model.
///
/// Nodes are split into `n_clusters` contiguous, nearly balanced blocks.
/// Each node emits `intra_degree` edges to uniform members of its own
/// block and `inter_degree` edges to uniform nodes anywhere — so recovered
/// clusters should match the planted blocks, and the F-score of the full
/// pipeline on the streamed file is meaningful.
#[derive(Debug, Clone)]
pub struct StreamDsbmConfig {
    /// Total node count.
    pub n_nodes: usize,
    /// Number of planted clusters (contiguous node-id blocks).
    pub n_clusters: usize,
    /// Out-edges per node aimed at the node's own cluster.
    pub intra_degree: usize,
    /// Out-edges per node aimed uniformly at the whole graph.
    pub inter_degree: usize,
    /// Seed; identical configs produce byte-identical files.
    pub seed: u64,
}

impl Default for StreamDsbmConfig {
    fn default() -> Self {
        StreamDsbmConfig {
            n_nodes: 10_000,
            n_clusters: 20,
            intra_degree: 8,
            inter_degree: 2,
            seed: 42,
        }
    }
}

impl StreamDsbmConfig {
    /// Planted cluster of node `u` (blocks of near-equal size, remainder
    /// spread over the first blocks — same layout as the in-memory DSBM).
    pub fn cluster_of(&self, u: usize) -> u32 {
        let k = self.n_clusters;
        let base = self.n_nodes / k;
        let rem = self.n_nodes % k;
        // The first `rem` clusters have `base + 1` nodes.
        let big = rem * (base + 1);
        if u < big {
            (u / (base + 1)) as u32
        } else {
            (rem + (u - big) / base.max(1)) as u32
        }
    }

    /// Node-id range `[lo, hi)` of cluster `c`.
    fn cluster_range(&self, c: usize) -> (usize, usize) {
        let k = self.n_clusters;
        let base = self.n_nodes / k;
        let rem = self.n_nodes % k;
        let lo = c * base + c.min(rem);
        let hi = lo + base + usize::from(c < rem);
        (lo, hi)
    }
}

/// Streams the planted-partition edge list to `writer`, one source node at
/// a time. Returns the number of edges written. Memory use is bounded by
/// the largest per-node out-neighborhood, independent of `n_nodes`.
pub fn stream_dsbm<W: Write>(cfg: &StreamDsbmConfig, writer: W) -> io::Result<u64> {
    assert!(cfg.n_clusters >= 1, "need at least one cluster");
    assert!(
        cfg.n_nodes >= cfg.n_clusters,
        "need at least one node per cluster"
    );
    let mut w = BufWriter::new(writer);
    writeln!(w, "# symclust edge list: {} nodes", cfg.n_nodes)?;
    let mut written = 0u64;
    let mut targets: Vec<usize> = Vec::with_capacity(cfg.intra_degree + cfg.inter_degree);
    for u in 0..cfg.n_nodes {
        targets.clear();
        let (lo, hi) = cfg.cluster_range(cfg.cluster_of(u) as usize);
        let span = hi - lo;
        for i in 0..cfg.intra_degree {
            if span <= 1 {
                break; // singleton cluster: no intra target but u itself
            }
            let h = hash_key(&[cfg.seed, 1, u as u64, i as u64]);
            targets.push(lo + (h % span as u64) as usize);
        }
        for i in 0..cfg.inter_degree {
            let h = hash_key(&[cfg.seed, 2, u as u64, i as u64]);
            targets.push((h % cfg.n_nodes as u64) as usize);
        }
        targets.sort_unstable();
        targets.dedup();
        for &v in targets.iter().filter(|&&v| v != u) {
            writeln!(w, "{u} {v}")?;
            written += 1;
        }
    }
    w.flush()?;
    Ok(written)
}

/// Streams the planted ground truth (CLI format: `# symclust ground truth`
/// header, one `node cluster` pair per line) to `writer`.
pub fn stream_dsbm_truth<W: Write>(cfg: &StreamDsbmConfig, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# symclust ground truth: {} nodes, {} categories",
        cfg.n_nodes, cfg.n_clusters
    )?;
    for u in 0..cfg.n_nodes {
        writeln!(w, "{u} {}", cfg.cluster_of(u))?;
    }
    w.flush()
}

/// Writes the streamed DSBM edge list and ground truth to files.
pub fn stream_dsbm_to_files<P: AsRef<Path>, Q: AsRef<Path>>(
    cfg: &StreamDsbmConfig,
    edges_path: P,
    truth_path: Q,
) -> io::Result<u64> {
    let n = stream_dsbm(cfg, fs::File::create(edges_path)?)?;
    stream_dsbm_truth(cfg, fs::File::create(truth_path)?)?;
    Ok(n)
}

/// Configuration for [`stream_kronecker`]: a streaming R-MAT / stochastic
/// Kronecker generator.
///
/// The graph has `2^levels` nodes. Edge placement follows the classic
/// recursive quadrant model with initiator `[[a, b], [c, d]]`: at each of
/// the `levels` recursion steps the edge picks a quadrant with those
/// probabilities, the row choice fixing one source bit and the column
/// choice one target bit.
///
/// The streaming trick: instead of throwing `n_edges` darts (which needs a
/// global dedup set), iterate *sources* in ascending order. A source `u`
/// fixes every row bit, so its **expected** out-degree is
/// `n_edges × Π_l P(row bit l of u)` where `P(0) = a + b`, `P(1) = c + d`;
/// the generator rounds that expectation stochastically (hash-driven) and
/// draws each target by sampling the column bit per level *conditioned on
/// `u`'s row bit* (`b/(a+b)` or `d/(c+d)`). This reproduces the R-MAT
/// degree skew — low-id nodes are the heavy hubs for the usual
/// `a > b, c > d` initiators — with per-source memory only.
#[derive(Debug, Clone)]
pub struct StreamKroneckerConfig {
    /// Recursion depth; the graph has `2^levels` nodes.
    pub levels: u32,
    /// Quadrant weights `[[a, b], [c, d]]`; normalized internally.
    pub initiator: [[f64; 2]; 2],
    /// Target edge count (expected; the realized count varies slightly and
    /// shrinks by per-source dedup and self-loop removal).
    pub n_edges: u64,
    /// Seed; identical configs produce byte-identical files.
    pub seed: u64,
}

impl Default for StreamKroneckerConfig {
    fn default() -> Self {
        StreamKroneckerConfig {
            levels: 14,
            initiator: [[0.57, 0.19], [0.19, 0.05]],
            n_edges: 120_000,
            seed: 42,
        }
    }
}

impl StreamKroneckerConfig {
    /// Node count (`2^levels`).
    pub fn n_nodes(&self) -> usize {
        1usize << self.levels
    }
}

/// Streams the R-MAT edge list to `writer`, one source node at a time.
/// Returns the number of edges written. Memory use is bounded by the
/// largest per-node out-neighborhood.
pub fn stream_kronecker<W: Write>(cfg: &StreamKroneckerConfig, writer: W) -> io::Result<u64> {
    assert!(cfg.levels >= 1 && cfg.levels < 32, "levels must be 1..=31");
    let [[a, b], [c, d]] = cfg.initiator;
    let total = a + b + c + d;
    assert!(
        total > 0.0 && a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
        "initiator weights must be non-negative with a positive sum"
    );
    let p_row0 = (a + b) / total; // P(source bit = 0) at each level
    let p_col1_row0 = if a + b > 0.0 { b / (a + b) } else { 0.5 };
    let p_col1_row1 = if c + d > 0.0 { d / (c + d) } else { 0.5 };

    let n = cfg.n_nodes();
    let mut w = BufWriter::new(writer);
    writeln!(w, "# symclust edge list: {n} nodes")?;
    let mut written = 0u64;
    let mut targets: Vec<usize> = Vec::new();
    for u in 0..n {
        // Expected out-degree: n_edges × Π over u's bits of that bit's row
        // probability (bit l counted from the most significant level).
        let mut p_u = 1.0f64;
        for l in 0..cfg.levels {
            let bit = (u >> (cfg.levels - 1 - l)) & 1;
            p_u *= if bit == 0 { p_row0 } else { 1.0 - p_row0 };
        }
        let expect = cfg.n_edges as f64 * p_u;
        let floor = expect.floor();
        let frac = expect - floor;
        let extra = u64::from(unit(hash_key(&[cfg.seed, 3, u as u64])) < frac);
        let d_u = floor as u64 + extra;

        targets.clear();
        targets.reserve(d_u as usize);
        for i in 0..d_u {
            let mut v = 0usize;
            for l in 0..cfg.levels {
                let row_bit = (u >> (cfg.levels - 1 - l)) & 1;
                let p1 = if row_bit == 0 {
                    p_col1_row0
                } else {
                    p_col1_row1
                };
                let h = hash_key(&[cfg.seed, 4, u as u64, i, l as u64]);
                if unit(h) < p1 {
                    v |= 1usize << (cfg.levels - 1 - l);
                }
            }
            targets.push(v);
        }
        targets.sort_unstable();
        targets.dedup();
        for &v in targets.iter().filter(|&&v| v != u) {
            writeln!(w, "{u} {v}")?;
            written += 1;
        }
    }
    w.flush()?;
    Ok(written)
}

/// Writes the streamed Kronecker edge list to a file.
pub fn stream_kronecker_to_file<P: AsRef<Path>>(
    cfg: &StreamKroneckerConfig,
    path: P,
) -> io::Result<u64> {
    stream_kronecker(cfg, fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::io::read_edge_list;

    #[test]
    fn dsbm_stream_is_deterministic_and_loader_strict() {
        let cfg = StreamDsbmConfig {
            n_nodes: 500,
            n_clusters: 10,
            ..Default::default()
        };
        let mut a = Vec::new();
        let na = stream_dsbm(&cfg, &mut a).unwrap();
        let mut b = Vec::new();
        let nb = stream_dsbm(&cfg, &mut b).unwrap();
        assert_eq!(a, b, "same config must produce byte-identical output");
        assert_eq!(na, nb);
        // The strict loader rejects self-loops and duplicates: loading
        // must succeed and agree on the edge count.
        let g = read_edge_list(a.as_slice()).unwrap();
        assert_eq!(g.n_edges(), na as usize);
        assert_eq!(g.n_nodes(), 500);
    }

    #[test]
    fn dsbm_different_seeds_differ() {
        let cfg = StreamDsbmConfig::default();
        let other = StreamDsbmConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        let mut a = Vec::new();
        stream_dsbm(&cfg, &mut a).unwrap();
        let mut b = Vec::new();
        stream_dsbm(&other, &mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn dsbm_edges_are_mostly_intra_cluster() {
        let cfg = StreamDsbmConfig {
            n_nodes: 1000,
            n_clusters: 10,
            intra_degree: 8,
            inter_degree: 2,
            seed: 7,
        };
        let mut buf = Vec::new();
        stream_dsbm(&cfg, &mut buf).unwrap();
        let g = read_edge_list(buf.as_slice()).unwrap();
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v, _) in g.edges() {
            total += 1;
            if cfg.cluster_of(u) == cfg.cluster_of(v as usize) {
                intra += 1;
            }
        }
        // 8 intra vs 2 uniform darts (1/10 of which also land intra).
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra fraction {frac}");
    }

    #[test]
    fn dsbm_cluster_blocks_partition_the_nodes() {
        let cfg = StreamDsbmConfig {
            n_nodes: 103, // deliberately not divisible by k
            n_clusters: 7,
            ..Default::default()
        };
        let mut sizes = vec![0usize; 7];
        let mut last = 0u32;
        for u in 0..103 {
            let c = cfg.cluster_of(u);
            assert!(c >= last, "cluster ids must be non-decreasing in u");
            last = c;
            sizes[c as usize] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 14 || s == 15), "{sizes:?}");
    }

    #[test]
    fn dsbm_truth_matches_cli_format() {
        let cfg = StreamDsbmConfig {
            n_nodes: 50,
            n_clusters: 5,
            ..Default::default()
        };
        let mut buf = Vec::new();
        stream_dsbm_truth(&cfg, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "# symclust ground truth: 50 nodes, 5 categories"
        );
        assert_eq!(lines.clone().count(), 50);
        assert_eq!(lines.next().unwrap(), "0 0");
        assert_eq!(text.lines().last().unwrap(), "49 4");
    }

    #[test]
    fn kronecker_stream_is_deterministic_and_loader_strict() {
        let cfg = StreamKroneckerConfig {
            levels: 9,
            n_edges: 4_000,
            ..Default::default()
        };
        let mut a = Vec::new();
        let na = stream_kronecker(&cfg, &mut a).unwrap();
        let mut b = Vec::new();
        stream_kronecker(&cfg, &mut b).unwrap();
        assert_eq!(a, b);
        let g = read_edge_list(a.as_slice()).unwrap();
        assert_eq!(g.n_edges(), na as usize);
        assert!(g.n_nodes() <= 512);
    }

    #[test]
    fn kronecker_edge_count_is_near_target() {
        let cfg = StreamKroneckerConfig {
            levels: 11,
            n_edges: 20_000,
            ..Default::default()
        };
        let mut buf = Vec::new();
        let n = stream_kronecker(&cfg, &mut buf).unwrap();
        // Dedup and self-loop removal shave some edges off; the realized
        // count should still be within ~25% of the target.
        assert!(n > 15_000 && n <= 20_500, "edge count {n}");
    }

    #[test]
    fn kronecker_is_degree_skewed() {
        let cfg = StreamKroneckerConfig {
            levels: 10,
            n_edges: 10_000,
            ..Default::default()
        };
        let mut buf = Vec::new();
        stream_kronecker(&cfg, &mut buf).unwrap();
        let g = read_edge_list(buf.as_slice()).unwrap();
        // With a = 0.57 the low-id quadrant dominates: node 0 must be a
        // hub far above the mean out-degree.
        let mean = g.n_edges() as f64 / g.n_nodes() as f64;
        let d0 = g.adjacency().row_nnz(0) as f64;
        assert!(d0 > 5.0 * mean, "node-0 degree {d0} vs mean {mean}");
    }

    #[test]
    fn files_round_trip() {
        let dir = std::env::temp_dir().join(format!("symclust_stream_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.txt");
        let truth = dir.join("g.truth.txt");
        let cfg = StreamDsbmConfig {
            n_nodes: 120,
            n_clusters: 6,
            ..Default::default()
        };
        let n = stream_dsbm_to_files(&cfg, &edges, &truth).unwrap();
        let g = symclust_graph::io::read_edge_list_file(&edges).unwrap();
        assert_eq!(g.n_edges(), n as usize);
        assert!(fs::read_to_string(&truth)
            .unwrap()
            .starts_with("# symclust ground truth: 120 nodes, 6 categories"));
        fs::remove_dir_all(&dir).ok();
    }
}

//! The three primitive metric types: counters, gauges, histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count (`u64`, wrapping on overflow in
/// release builds like any atomic add — in practice counters count edges,
/// flops, and retries, far below 2^64).
///
/// Handles are `Arc`-shared out of the registry; incrementing is a single
/// relaxed atomic add, safe from any thread.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time `f64` measurement (queue depth, survival ratio,
/// residual). Stored as the bit pattern in an `AtomicU64`.
///
/// Besides plain [`Gauge::set`], a gauge tracks its high-water mark via
/// [`Gauge::record_max`], which only moves the value upward — the pattern
/// used for `engine.queue_depth_hwm`.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` exceeds the current value
    /// (high-water mark update; lock-free CAS loop).
    pub fn record_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if v <= f64::from_bits(cur) {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Bucket bounds are *inclusive upper bounds* in strictly increasing
/// order; an observation lands in the first bucket whose bound is `>=`
/// the value. Values above the last bound land in a dedicated overflow
/// bucket, values below the first bound (including negatives) land in the
/// first bucket. Total count and sum are tracked alongside the buckets.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1; last is overflow
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The configured inclusive upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// A consistent-enough copy of the current state (individual loads are
    /// relaxed; exactness across concurrent writers is not guaranteed,
    /// which is fine for reporting).
    pub fn snapshot_with_name(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Point-in-time copy of one histogram, carried in
/// [`crate::MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registry name of the histogram.
    pub name: String,
    /// Inclusive upper bounds (same length as `buckets` minus the
    /// overflow bucket).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; the final entry is the overflow
    /// bucket (observations above the last bound).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        *self.buckets.last().expect("histogram has buckets")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        g.record_max(0.5); // below current: no-op
        assert_eq!(g.get(), 1.5);
        g.record_max(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn histogram_zero_lands_in_first_bucket() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.record(0.0);
        let s = h.snapshot_with_name("h");
        assert_eq!(s.buckets, vec![1, 0, 0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn histogram_bound_value_is_inclusive() {
        // A value exactly equal to a bound lands in that bound's bucket,
        // including the final (max) bound.
        let h = Histogram::new(&[1.0, 10.0]);
        h.record(1.0);
        h.record(10.0);
        let s = h.snapshot_with_name("h");
        assert_eq!(s.buckets, vec![1, 1, 0]);
        assert_eq!(s.overflow(), 0);
    }

    #[test]
    fn histogram_above_max_goes_to_overflow_bucket() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.record(10.000001);
        h.record(f64::MAX);
        let s = h.snapshot_with_name("h");
        assert_eq!(s.buckets, vec![0, 0, 2]);
        assert_eq!(s.overflow(), 2);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn histogram_negative_clamps_to_first_bucket() {
        let h = Histogram::new(&[1.0]);
        h.record(-5.0);
        let s = h.snapshot_with_name("h");
        assert_eq!(s.buckets, vec![1, 0]);
        assert_eq!(s.sum, -5.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn histogram_rejects_empty_bounds() {
        Histogram::new(&[]);
    }
}

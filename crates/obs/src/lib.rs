//! Zero-dependency metrics and span tracing for the symclust pipeline.
//!
//! This crate is the observability substrate for the workspace: atomic
//! [`Counter`]s, [`Gauge`]s, fixed-bucket [`Histogram`]s, and RAII timing
//! [`Span`]s, all registered in a global-free [`MetricsRegistry`] that is
//! threaded through the engine the same way `CancelToken` already is —
//! cloned (cheaply, it is an `Arc`) into whatever needs to record, with
//! `Option<&MetricsRegistry>` at kernel boundaries so uninstrumented
//! callers pay nothing.
//!
//! Design rules:
//!
//! - **No globals.** A registry is constructed per run and owned by the
//!   caller; two concurrent runs never share counters by accident.
//! - **Cheap hot paths.** Kernels accumulate plain integers in locals and
//!   flush once per call; the atomics are touched O(1) times per kernel
//!   invocation, not per row or per nonzero.
//! - **Stable names.** Metric names are dot-separated lowercase
//!   (`spgemm.flops`, `engine.cache_hits`) and documented in DESIGN.md
//!   §11; the flattened snapshot keys (`counter.spgemm.flops`, …) are the
//!   stability contract consumed by `BENCH_pipeline.json` and the CI
//!   bench gate.
//!
//! ```
//! use symclust_obs::MetricsRegistry;
//!
//! let metrics = MetricsRegistry::new();
//! metrics.counter("spgemm.flops").add(1024);
//! {
//!     let _span = metrics.span("stage.symmetrize");
//!     // ... timed work ...
//! }
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("spgemm.flops"), Some(1024));
//! ```

#![warn(missing_docs)]

mod metric;
mod registry;
mod snapshot;
mod span;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::MetricsRegistry;
pub use snapshot::{GaugeValue, MetricsSnapshot, SpanSnapshot};
pub use span::{Span, SpanRecord, SpanStats};

//! Point-in-time snapshot of a registry, plus its three renderings:
//! flat key/value pairs (the BENCH stability contract), flat JSON, and a
//! human-readable table.

use crate::metric::HistogramSnapshot;
use crate::span::SpanStats;

/// One gauge reading in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeValue {
    /// Registry name of the gauge.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// One span aggregate in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Aggregated timing statistics.
    pub stats: SpanStats,
}

/// A point-in-time copy of every instrument in a
/// [`crate::MetricsRegistry`], sorted by name within each section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<GaugeValue>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
}

/// Formats a float the way our JSON writers do: integral values without a
/// trailing `.0`, non-finite values as `null`.
fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.name == name).map(|s| &s.stats)
    }

    /// Flattens every instrument into stable dot-separated keys:
    ///
    /// - `counter.<name>` — counter value
    /// - `gauge.<name>` — gauge value
    /// - `span.<name>.count|total_secs|min_secs|max_secs` — span aggregate
    /// - `hist.<name>.count|sum|le_<bound>|overflow` — histogram state
    ///
    /// These keys are the stability contract for `--metrics-out`,
    /// `BENCH_pipeline.json`, and the CI bench gate (DESIGN.md §11).
    pub fn to_flat(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (name, v) in &self.counters {
            out.push((format!("counter.{name}"), *v as f64));
        }
        for g in &self.gauges {
            out.push((format!("gauge.{}", g.name), g.value));
        }
        for h in &self.histograms {
            out.push((format!("hist.{}.count", h.name), h.count as f64));
            out.push((format!("hist.{}.sum", h.name), h.sum));
            for (bound, n) in h.bounds.iter().zip(&h.buckets) {
                out.push((format!("hist.{}.le_{}", h.name, fmt_num(*bound)), *n as f64));
            }
            out.push((format!("hist.{}.overflow", h.name), h.overflow() as f64));
        }
        for s in &self.spans {
            out.push((format!("span.{}.count", s.name), s.stats.count as f64));
            out.push((format!("span.{}.total_secs", s.name), s.stats.total_secs));
            out.push((format!("span.{}.min_secs", s.name), s.stats.min_secs));
            out.push((format!("span.{}.max_secs", s.name), s.stats.max_secs));
        }
        out
    }

    /// Serializes [`MetricsSnapshot::to_flat`] as one flat JSON object —
    /// the `--metrics-out` file format, readable by the workspace's flat
    /// JSON parser.
    pub fn to_json(&self) -> String {
        let mut buf = String::from("{");
        for (i, (k, v)) in self.to_flat().iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            // Keys are machine-generated metric names: no characters that
            // need escaping beyond what fmt_num already guarantees.
            buf.push('"');
            buf.push_str(k);
            buf.push_str("\":");
            buf.push_str(&fmt_num(*v));
        }
        buf.push('}');
        buf
    }

    /// Renders a human-readable table for `symclust pipeline --metrics`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .to_flat()
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(20)
            .max(20);
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for g in &self.gauges {
                out.push_str(&format!("  {:<width$}  {}\n", g.name, fmt_num(g.value)));
            }
        }
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "spans{:<w$}  {:>6}  {:>10}  {:>10}  {:>10}\n",
                "",
                "count",
                "total(s)",
                "mean(s)",
                "max(s)",
                w = width - 3
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<width$}  {:>6}  {:>10.4}  {:>10.4}  {:>10.4}\n",
                    s.name,
                    s.stats.count,
                    s.stats.total_secs,
                    s.stats.mean_secs(),
                    s.stats.max_secs
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<width$}  count={} sum={}\n",
                    h.name,
                    h.count,
                    fmt_num(h.sum)
                ));
                for (bound, n) in h.bounds.iter().zip(&h.buckets) {
                    out.push_str(&format!(
                        "  {:<width$}  le {:>10}: {}\n",
                        "",
                        fmt_num(*bound),
                        n
                    ));
                }
                out.push_str(&format!(
                    "  {:<width$}  le {:>10}: {}\n",
                    "",
                    "+inf",
                    h.overflow()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let m = MetricsRegistry::new();
        m.counter("spgemm.flops").add(1234);
        m.counter("engine.cache_hits").add(4);
        m.gauge("prune.survival_ratio").set(0.25);
        m.histogram("stage_secs", &[0.1, 1.0]).record(0.05);
        m.observe_span_secs("stage.cluster", 0.5);
        m.snapshot()
    }

    #[test]
    fn flat_keys_are_stable_and_prefixed() {
        let keys: Vec<String> = sample().to_flat().into_iter().map(|(k, _)| k).collect();
        assert!(
            keys.contains(&"counter.spgemm.flops".to_string()),
            "{keys:?}"
        );
        assert!(keys.contains(&"gauge.prune.survival_ratio".to_string()));
        assert!(keys.contains(&"hist.stage_secs.le_0.1".to_string()));
        assert!(keys.contains(&"hist.stage_secs.overflow".to_string()));
        assert!(keys.contains(&"span.stage.cluster.total_secs".to_string()));
    }

    #[test]
    fn json_is_flat_and_parseable_shape() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"counter.spgemm.flops\":1234"), "{j}");
        assert!(j.contains("\"gauge.prune.survival_ratio\":0.25"), "{j}");
        // Flat: no nested objects.
        assert_eq!(j.matches('{').count(), 1, "{j}");
    }

    #[test]
    fn lookup_helpers_find_values() {
        let s = sample();
        assert_eq!(s.counter("spgemm.flops"), Some(1234));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("prune.survival_ratio"), Some(0.25));
        assert_eq!(s.span("stage.cluster").unwrap().count, 1);
    }

    #[test]
    fn table_renders_all_sections() {
        let t = sample().render_table();
        assert!(t.contains("counters"), "{t}");
        assert!(t.contains("spgemm.flops"), "{t}");
        assert!(t.contains("gauges"), "{t}");
        assert!(t.contains("spans"), "{t}");
        assert!(t.contains("stage.cluster"), "{t}");
        assert!(t.contains("histograms"), "{t}");
        assert!(t.contains("+inf"), "{t}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.render_table(), "");
        assert_eq!(s.to_json(), "{}");
    }
}

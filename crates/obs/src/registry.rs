//! The global-free metrics registry.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::{GaugeValue, MetricsSnapshot, SpanSnapshot};
use crate::span::{Span, SpanRecord, SpanStats};

/// Maximum individual span records retained in the trace ring; aggregates
/// in [`SpanStats`] keep counting past this.
const TRACE_CAPACITY: usize = 4096;

struct Inner {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    trace: Mutex<Vec<SpanRecord>>,
}

/// A clonable handle to one run's metrics: counters, gauges, histograms,
/// and span aggregates, keyed by dot-separated names.
///
/// Cloning is cheap (`Arc`); all clones observe the same metrics. There
/// is deliberately no process-global registry — construct one per run and
/// thread it through, exactly like `CancelToken`. Instruments are
/// created on first use ([`MetricsRegistry::counter`] et al. are
/// get-or-create); hot paths should resolve a handle once and reuse it.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.lock().unwrap().len())
            .field("gauges", &self.inner.gauges.lock().unwrap().len())
            .field("histograms", &self.inner.histograms.lock().unwrap().len())
            .field("spans", &self.inner.spans.lock().unwrap().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry; its epoch (time zero for span trace
    /// offsets) is now.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
                trace: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Returns the counter named `name`, creating it at zero on first
    /// use. The returned handle can be held and incremented without
    /// touching the registry again.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.counters.lock().unwrap();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.gauges.lock().unwrap();
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Returns the histogram named `name`, creating it with `bounds`
    /// (inclusive upper bounds, strictly increasing) on first use. If the
    /// histogram already exists its original bounds are kept — callers
    /// are expected to agree on bounds per name.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock().unwrap();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new(bounds));
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Opens an RAII timing span named `name`; its duration is recorded
    /// into the per-name [`SpanStats`] aggregate (and the bounded trace
    /// ring) when the returned guard drops.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.clone(), name.to_string())
    }

    /// Records an already-measured duration under span `name` without the
    /// RAII guard (used when a duration is computed externally).
    pub fn observe_span_secs(&self, name: &str, secs: f64) {
        self.record_stats(name, secs);
        let mut trace = self.inner.trace.lock().unwrap();
        if trace.len() < TRACE_CAPACITY {
            let start_secs = self.inner.epoch.elapsed().as_secs_f64() - secs;
            trace.push(SpanRecord {
                name: name.to_string(),
                start_secs: start_secs.max(0.0),
                secs,
            });
        }
    }

    pub(crate) fn record_span(&self, name: &str, start: Instant, secs: f64) {
        self.record_stats(name, secs);
        let mut trace = self.inner.trace.lock().unwrap();
        if trace.len() < TRACE_CAPACITY {
            trace.push(SpanRecord {
                name: name.to_string(),
                start_secs: start
                    .saturating_duration_since(self.inner.epoch)
                    .as_secs_f64(),
                secs,
            });
        }
    }

    fn record_stats(&self, name: &str, secs: f64) {
        let mut spans = self.inner.spans.lock().unwrap();
        match spans.get_mut(name) {
            Some(stats) => stats.observe(secs),
            None => {
                spans.insert(name.to_string(), SpanStats::new(secs));
            }
        }
    }

    /// Individual closed spans, in completion order (bounded at 4096;
    /// aggregates keep counting past the cap).
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.inner.trace.lock().unwrap().clone()
    }

    /// A point-in-time copy of every instrument, sorted by name. This is
    /// what the engine serializes into the `metrics_snapshot` event and
    /// what `--metrics-out` writes.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| GaugeValue {
                name: k.clone(),
                value: v.get(),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| v.snapshot_with_name(k))
            .collect();
        let spans = self
            .inner
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| SpanSnapshot {
                name: k.clone(),
                stats: v.clone(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_handles_share_state() {
        let m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(m.counter("x").get(), 5);
    }

    #[test]
    fn clones_share_the_registry() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.counter("shared").inc();
        assert_eq!(m.snapshot().counter("shared"), Some(1));
    }

    #[test]
    fn concurrent_counter_increments_from_worker_pool() {
        let m = MetricsRegistry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        thread::scope(|s| {
            for _ in 0..threads {
                let m = m.clone();
                s.spawn(move || {
                    let c = m.counter("spgemm.flops");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(m.counter("spgemm.flops").get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_and_gauge_updates() {
        let m = MetricsRegistry::new();
        thread::scope(|s| {
            for t in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    let h = m.histogram("obs", &[10.0, 100.0]);
                    let g = m.gauge("hwm");
                    for i in 0..1000 {
                        h.record(i as f64);
                        g.record_max((t * 1000 + i) as f64);
                    }
                });
            }
        });
        let snap = m.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 4000);
        assert_eq!(h.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(h.overflow(), 4 * 899); // 101..=999 per thread
        assert_eq!(snap.gauges[0].value, 3999.0);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let m = MetricsRegistry::new();
        {
            let _s = m.span("stage.load");
        }
        {
            let _s = m.span("stage.load");
        }
        let snap = m.snapshot();
        let span = snap.span("stage.load").expect("span recorded");
        assert_eq!(span.count, 2);
        assert!(span.total_secs >= 0.0);
        assert!(span.min_secs <= span.max_secs);
        assert_eq!(m.recent_spans().len(), 2);
        assert_eq!(m.recent_spans()[0].name, "stage.load");
    }

    #[test]
    fn observe_span_secs_feeds_aggregates() {
        let m = MetricsRegistry::new();
        m.observe_span_secs("sym.Bibliometric", 0.5);
        m.observe_span_secs("sym.Bibliometric", 1.5);
        let snap = m.snapshot();
        let s = snap.span("sym.Bibliometric").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_secs, 2.0);
        assert_eq!(s.min_secs, 0.5);
        assert_eq!(s.max_secs, 1.5);
        assert_eq!(s.mean_secs(), 1.0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let m = MetricsRegistry::new();
        m.counter("b").inc();
        m.counter("a").inc();
        m.counter("c").inc();
        let snap = m.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn debug_shows_instrument_counts() {
        let m = MetricsRegistry::new();
        m.counter("a");
        let dbg = format!("{m:?}");
        assert!(dbg.contains("MetricsRegistry"), "{dbg}");
        assert!(dbg.contains("counters: 1"), "{dbg}");
    }
}

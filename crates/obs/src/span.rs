//! RAII timing spans and their per-name aggregates.

use std::time::Instant;

use crate::registry::MetricsRegistry;

/// Aggregated statistics for all closed spans sharing one name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Number of closed spans.
    pub count: u64,
    /// Total wall-clock seconds across all spans.
    pub total_secs: f64,
    /// Shortest span, in seconds.
    pub min_secs: f64,
    /// Longest span, in seconds.
    pub max_secs: f64,
}

impl SpanStats {
    pub(crate) fn observe(&mut self, secs: f64) {
        self.count += 1;
        self.total_secs += secs;
        self.min_secs = self.min_secs.min(secs);
        self.max_secs = self.max_secs.max(secs);
    }

    pub(crate) fn new(secs: f64) -> Self {
        SpanStats {
            count: 1,
            total_secs: secs,
            min_secs: secs,
            max_secs: secs,
        }
    }

    /// Mean span duration in seconds (0 when no spans closed).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }
}

/// One closed span in the bounded trace ring: what ran, when it started
/// (seconds since the registry was created), and how long it took.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `stage.symmetrize` or `sym.Degree-discounted`).
    pub name: String,
    /// Start offset in seconds since the registry epoch.
    pub start_secs: f64,
    /// Duration in seconds.
    pub secs: f64,
}

/// An open timing span; records its wall-clock duration into the registry
/// when dropped.
///
/// Created via [`MetricsRegistry::span`]. Holding one across a unit of
/// work is the whole API:
///
/// ```
/// let metrics = symclust_obs::MetricsRegistry::new();
/// {
///     let _span = metrics.span("stage.cluster");
///     // ... timed work ...
/// } // duration recorded here
/// assert_eq!(metrics.snapshot().spans[0].stats.count, 1);
/// ```
#[derive(Debug)]
pub struct Span {
    registry: MetricsRegistry,
    name: String,
    start: Instant,
}

impl Span {
    pub(crate) fn new(registry: MetricsRegistry, name: String) -> Self {
        Span {
            registry,
            name,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        self.registry.record_span(&self.name, self.start, secs);
    }
}

//! The result of a clustering: a dense assignment of nodes to clusters.

/// A hard clustering of `n` nodes into `k` clusters labeled `0..k`.
///
/// Every node belongs to exactly one cluster (algorithms that produce
/// singletons simply put such nodes in their own cluster).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignments: Vec<u32>,
    n_clusters: usize,
    converged: bool,
}

impl Clustering {
    /// Builds from raw assignments, renumbering cluster ids to a dense
    /// `0..k` in order of first appearance.
    pub fn from_assignments(raw: &[u32]) -> Clustering {
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut assignments = Vec::with_capacity(raw.len());
        for &c in raw {
            let next = remap.len() as u32;
            let dense = *remap.entry(c).or_insert(next);
            assignments.push(dense);
        }
        Clustering {
            assignments,
            n_clusters: remap.len(),
            converged: true,
        }
    }

    /// Builds the trivial clustering with every node in one cluster.
    pub fn single_cluster(n: usize) -> Clustering {
        Clustering {
            assignments: vec![0; n],
            n_clusters: usize::from(n > 0),
            converged: true,
        }
    }

    /// Builds the discrete clustering with every node its own cluster.
    pub fn singletons(n: usize) -> Clustering {
        Clustering {
            assignments: (0..n as u32).collect(),
            n_clusters: n,
            converged: true,
        }
    }

    /// Marks whether the producing algorithm converged. Iterative
    /// algorithms (MCL, MLR-MCL) that exhaust their iteration budget return
    /// the best-effort clustering flagged `converged = false` instead of an
    /// opaque error; direct algorithms leave the default `true`.
    pub fn with_converged(mut self, converged: bool) -> Self {
        self.converged = converged;
        self
    }

    /// False when the producing algorithm hit its iteration budget without
    /// converging (the clustering is best-effort).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.assignments.len()
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Cluster id of `node`.
    pub fn cluster_of(&self, node: usize) -> u32 {
        self.assignments[node]
    }

    /// The dense assignment vector.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Member lists per cluster, each sorted ascending.
    pub fn clusters(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.n_clusters];
        for (node, &c) in self.assignments.iter().enumerate() {
            out[c as usize].push(node as u32);
        }
        out
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters];
        for &c in &self.assignments {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest cluster.
    pub fn max_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Number of singleton clusters (the paper's Bibliometric diagnostic).
    pub fn n_singleton_clusters(&self) -> usize {
        self.sizes().into_iter().filter(|&s| s == 1).count()
    }

    /// True if two nodes share a cluster.
    pub fn same_cluster(&self, a: usize, b: usize) -> bool {
        self.assignments[a] == self.assignments[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignments_renumbers_densely() {
        let c = Clustering::from_assignments(&[7, 3, 7, 9]);
        assert_eq!(c.n_clusters(), 3);
        assert_eq!(c.assignments(), &[0, 1, 0, 2]);
        assert!(c.same_cluster(0, 2));
        assert!(!c.same_cluster(0, 1));
    }

    #[test]
    fn clusters_and_sizes() {
        let c = Clustering::from_assignments(&[0, 1, 0, 1, 1]);
        assert_eq!(c.clusters(), vec![vec![0, 2], vec![1, 3, 4]]);
        assert_eq!(c.sizes(), vec![2, 3]);
        assert_eq!(c.max_size(), 3);
    }

    #[test]
    fn singleton_count() {
        let c = Clustering::from_assignments(&[0, 1, 2, 2]);
        assert_eq!(c.n_singleton_clusters(), 2);
    }

    #[test]
    fn converged_flag_defaults_true_and_is_settable() {
        let c = Clustering::from_assignments(&[0, 1]);
        assert!(c.converged());
        let c = c.with_converged(false);
        assert!(!c.converged());
        assert!(Clustering::single_cluster(2).converged());
        assert!(Clustering::singletons(2).converged());
    }

    #[test]
    fn trivial_constructors() {
        let one = Clustering::single_cluster(4);
        assert_eq!(one.n_clusters(), 1);
        assert!(one.same_cluster(0, 3));
        let disc = Clustering::singletons(3);
        assert_eq!(disc.n_clusters(), 3);
        assert!(!disc.same_cluster(0, 1));
        let empty = Clustering::single_cluster(0);
        assert_eq!(empty.n_clusters(), 0);
        assert_eq!(empty.n_nodes(), 0);
    }
}

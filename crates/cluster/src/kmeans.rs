//! k-means with k-means++ seeding on dense row vectors.
//!
//! Used to post-process spectral embeddings (BestWCut and the standard
//! spectral clusterer). Points are rows of an `n × d` matrix stored
//! row-major.

use crate::{ClusterError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansOptions {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Stop when the relative decrease of the objective falls below this.
    pub tol: f64,
    /// Number of restarts; the best objective wins.
    pub n_init: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansOptions {
    fn default() -> Self {
        KMeansOptions {
            k: 8,
            max_iter: 100,
            tol: 1e-6,
            n_init: 3,
            seed: 0x5EED,
        }
    }
}

/// Outcome of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster id per point.
    pub assignments: Vec<u32>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations of the winning restart.
    pub iterations: usize,
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn kmeanspp_seeds(points: &[f64], n: usize, d: usize, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.gen_range(0..n);
    centers.push(points[first * d..(first + 1) * d].to_vec());
    let mut dist2: Vec<f64> = (0..n)
        .map(|i| sq_dist(&points[i * d..(i + 1) * d], &centers[0]))
        .collect();
    while centers.len() < k {
        let total: f64 = dist2.iter().sum();
        let idx = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in dist2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        let c = points[idx * d..(idx + 1) * d].to_vec();
        for i in 0..n {
            let nd = sq_dist(&points[i * d..(i + 1) * d], &c);
            if nd < dist2[i] {
                dist2[i] = nd;
            }
        }
        centers.push(c);
    }
    centers
}

fn lloyd(
    points: &[f64],
    n: usize,
    d: usize,
    mut centers: Vec<Vec<f64>>,
    opts: &KMeansOptions,
    rng: &mut StdRng,
) -> KMeansResult {
    let k = centers.len();
    let mut assignments = vec![0u32; n];
    let mut prev_inertia = f64::INFINITY;
    let mut iterations = 0;
    for iter in 1..=opts.max_iter {
        iterations = iter;
        // Assignment step.
        let mut inertia = 0.0;
        for i in 0..n {
            let p = &points[i * d..(i + 1) * d];
            let (mut best_c, mut best_d) = (0usize, f64::INFINITY);
            for (c, center) in centers.iter().enumerate() {
                let dist = sq_dist(p, center);
                if dist < best_d {
                    best_d = dist;
                    best_c = c;
                }
            }
            assignments[i] = best_c as u32;
            inertia += best_d;
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i] as usize;
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(&points[i * d..(i + 1) * d]) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed empty cluster at a random point.
                let idx = rng.gen_range(0..n);
                centers[c] = points[idx * d..(idx + 1) * d].to_vec();
            } else {
                for (ctr, s) in centers[c].iter_mut().zip(&sums[c]) {
                    *ctr = s / counts[c] as f64;
                }
            }
        }
        if prev_inertia.is_finite() && (prev_inertia - inertia).abs() <= opts.tol * prev_inertia {
            return KMeansResult {
                assignments,
                inertia,
                iterations,
            };
        }
        prev_inertia = inertia;
    }
    KMeansResult {
        assignments,
        inertia: prev_inertia,
        iterations,
    }
}

/// Runs k-means++ / Lloyd on `n` points of dimension `d` stored row-major
/// in `points`.
pub fn kmeans(points: &[f64], n: usize, d: usize, opts: &KMeansOptions) -> Result<KMeansResult> {
    if points.len() != n * d {
        return Err(ClusterError::InvalidConfig(format!(
            "points length {} != n*d = {}",
            points.len(),
            n * d
        )));
    }
    if opts.k == 0 || opts.k > n {
        return Err(ClusterError::InvalidConfig(format!(
            "k = {} out of range for {} points",
            opts.k, n
        )));
    }
    let mut best: Option<KMeansResult> = None;
    for init in 0..opts.n_init.max(1) {
        let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(init as u64));
        let centers = kmeanspp_seeds(points, n, d, opts.k, &mut rng);
        let result = lloyd(points, n, d, centers, opts, &mut rng);
        if best.as_ref().is_none_or(|b| result.inertia < b.inertia) {
            best = Some(result);
        }
    }
    Ok(best.expect("at least one init"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> (Vec<f64>, usize) {
        // Tight 2-D blobs around (0,0), (10,0), (0,10); 5 points each.
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for i in 0..5 {
                pts.push(cx + 0.01 * i as f64);
                pts.push(cy - 0.01 * i as f64);
            }
        }
        (pts, 15)
    }

    #[test]
    fn separates_clear_blobs() {
        let (pts, n) = three_blobs();
        let r = kmeans(
            &pts,
            n,
            2,
            &KMeansOptions {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // All points of a blob share a label; labels differ across blobs.
        for blob in 0..3 {
            let first = r.assignments[blob * 5];
            for i in 0..5 {
                assert_eq!(r.assignments[blob * 5 + i], first);
            }
        }
        let labels: std::collections::HashSet<u32> = r.assignments.iter().copied().collect();
        assert_eq!(labels.len(), 3);
        assert!(r.inertia < 0.1);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        let r = kmeans(
            &pts,
            3,
            2,
            &KMeansOptions {
                k: 3,
                n_init: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn k_one_gives_total_variance() {
        let pts = vec![0.0, 2.0]; // two 1-D points, mean 1, inertia 2
        let r = kmeans(
            &pts,
            2,
            1,
            &KMeansOptions {
                k: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((r.inertia - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_args() {
        assert!(kmeans(
            &[1.0, 2.0],
            2,
            1,
            &KMeansOptions {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(
            &[1.0, 2.0],
            2,
            1,
            &KMeansOptions {
                k: 5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(
            &[1.0],
            2,
            1,
            &KMeansOptions {
                k: 1,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let (pts, n) = three_blobs();
        let opts = KMeansOptions {
            k: 3,
            seed: 77,
            ..Default::default()
        };
        let a = kmeans(&pts, n, 2, &opts).unwrap();
        let b = kmeans(&pts, n, 2, &opts).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn duplicate_points_handled() {
        // All points identical: every center collapses, inertia 0.
        let pts = vec![1.0; 10];
        let r = kmeans(
            &pts,
            10,
            1,
            &KMeansOptions {
                k: 3,
                n_init: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.inertia < 1e-12);
    }
}

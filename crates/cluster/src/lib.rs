#![warn(missing_docs)]

//! # symclust-cluster — stage-2 graph clustering algorithms
//!
//! The paper's framework is deliberately agnostic about the undirected
//! clustering algorithm used after symmetrization (§3, Figure 2). This crate
//! provides from-scratch implementations of every algorithm the paper's
//! evaluation uses:
//!
//! * [`MlrMcl`] — Multi-Level Regularized Markov Clustering (Satuluri &
//!   Parthasarathy, KDD 2009), the paper's primary clusterer;
//! * [`MetisLike`] — a multilevel k-way partitioner in the style of
//!   Karypis & Kumar's Metis (coarsen → initial partition → refine);
//! * [`GraclusLike`] — multilevel weighted-kernel-k-means normalized-cut
//!   minimization in the style of Dhillon, Guan & Kulis' Graclus;
//! * [`BestWCut`] — the directed spectral baseline of Meila & Pentney
//!   (SDM 2007): weighted-cut spectral clustering via the directed
//!   Laplacian (Eq. 5 of the paper), Lanczos eigenvectors, and k-means++;
//! * [`SpectralClustering`] — standard normalized-cut spectral clustering
//!   of undirected graphs, used both standalone and inside BestWCut.
//!
//! All undirected algorithms implement [`ClusterAlgorithm`] and can be
//! paired with any `Symmetrizer` from `symclust-core`.

pub mod bestwcut;
pub mod clustering;
pub mod coarsen;
pub mod graclus_like;
pub mod kmeans;
pub mod local;
pub mod mcl;
pub mod metis_like;
pub mod mlrmcl;
pub mod spectral;

pub use bestwcut::{BestWCut, BestWCutOptions, WCutWeights};
pub use clustering::Clustering;
pub use coarsen::{coarsen_graph, CoarseLevel, CoarsenOptions};
pub use graclus_like::{GraclusLike, GraclusOptions};
pub use kmeans::{kmeans, KMeansOptions, KMeansResult};
pub use local::{pagerank_nibble, pagerank_nibble_directed, LocalCluster, NibbleOptions};
pub use mcl::{rmcl, MclOptions, MclResult};
pub use metis_like::{MetisLike, MetisOptions};
pub use mlrmcl::{MlrMcl, MlrMclOptions};
pub use spectral::{SpectralClustering, SpectralOptions};

use symclust_graph::UnGraph;

/// Error type for clustering operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClusterError {
    /// Underlying sparse-matrix failure.
    Sparse(symclust_sparse::SparseError),
    /// Underlying graph failure.
    Graph(symclust_graph::GraphError),
    /// Invalid configuration.
    InvalidConfig(String),
    /// The clustering was cancelled via a
    /// [`CancelToken`](symclust_sparse::CancelToken) (explicitly or by
    /// deadline).
    Cancelled,
}

impl ClusterError {
    /// Whether this error stems from cooperative cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ClusterError::Cancelled)
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Sparse(e) => write!(f, "sparse error: {e}"),
            ClusterError::Graph(e) => write!(f, "graph error: {e}"),
            ClusterError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            ClusterError::Cancelled => write!(f, "clustering cancelled"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<symclust_sparse::SparseError> for ClusterError {
    fn from(e: symclust_sparse::SparseError) -> Self {
        match e {
            symclust_sparse::SparseError::Cancelled => ClusterError::Cancelled,
            e => ClusterError::Sparse(e),
        }
    }
}

impl From<symclust_graph::GraphError> for ClusterError {
    fn from(e: symclust_graph::GraphError) -> Self {
        ClusterError::Graph(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Anything that can be viewed as an undirected graph — lets callers pass a
/// `SymmetrizedGraph` straight to a clusterer.
pub trait AsUnGraph {
    /// The undirected-graph view.
    fn as_ungraph(&self) -> &UnGraph;
}

impl AsUnGraph for UnGraph {
    fn as_ungraph(&self) -> &UnGraph {
        self
    }
}

impl AsUnGraph for symclust_core::SymmetrizedGraph {
    fn as_ungraph(&self) -> &UnGraph {
        self.graph()
    }
}

/// An undirected-graph clustering algorithm (stage 2 of the framework).
///
/// Object-safe: the experiment harness holds `Vec<Box<dyn ClusterAlgorithm>>`.
pub trait ClusterAlgorithm {
    /// Short human-readable algorithm name.
    fn name(&self) -> String;

    /// Clusters the undirected graph.
    fn cluster_ungraph(&self, g: &UnGraph) -> Result<Clustering>;

    /// [`cluster_ungraph`](Self::cluster_ungraph) with cooperative
    /// cancellation.
    ///
    /// The default implementation only checks the token before starting —
    /// fine for the fast partitioners. [`MlrMcl`] overrides it to poll
    /// between R-MCL iterations, so long flows stop promptly.
    fn cluster_ungraph_cancellable(
        &self,
        g: &UnGraph,
        token: &symclust_sparse::CancelToken,
    ) -> Result<Clustering> {
        token.checkpoint()?;
        self.cluster_ungraph(g)
    }

    /// [`cluster_ungraph_cancellable`](Self::cluster_ungraph_cancellable)
    /// that also records algorithm counters (iterations, convergence —
    /// DESIGN.md §11) into `metrics`.
    ///
    /// The default implementation ignores the registry; [`MlrMcl`]
    /// overrides it to record R-MCL iteration counts and convergence
    /// residuals from inside the flow loop.
    fn cluster_observed(
        &self,
        g: &UnGraph,
        token: &symclust_sparse::CancelToken,
        metrics: Option<&symclust_obs::MetricsRegistry>,
    ) -> Result<Clustering> {
        let _ = metrics;
        self.cluster_ungraph_cancellable(g, token)
    }

    /// Clusters anything viewable as an undirected graph (ergonomic entry
    /// point; accepts `&UnGraph` or `&SymmetrizedGraph`).
    fn cluster<G: AsUnGraph>(&self, g: &G) -> Result<Clustering>
    where
        Self: Sized,
    {
        self.cluster_ungraph(g.as_ungraph())
    }
}

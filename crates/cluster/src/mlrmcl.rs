//! Multi-Level Regularized Markov Clustering (MLR-MCL).
//!
//! Satuluri & Parthasarathy, KDD 2009 — the paper's primary stage-2
//! clusterer. The graph is coarsened by heavy-edge matching; R-MCL runs to
//! convergence on the coarsest graph; the converged flow is then projected
//! level by level back to the original graph, with a few R-MCL iterations of
//! refinement at each level. The multilevel strategy both accelerates
//! convergence (flows start near their fixed point) and improves quality
//! (coarse-level flows capture global structure).

use crate::clustering::Clustering;
use crate::coarsen::{coarsen_graph, CoarsenOptions};
use crate::mcl::{canonical_flow_capped, extract_clusters, rmcl_iterate_with, MclOptions};
use crate::{ClusterAlgorithm, ClusterError, Result};
use symclust_graph::UnGraph;
use symclust_obs::MetricsRegistry;
use symclust_sparse::{CancelToken, CsrMatrix};

/// Options for [`MlrMcl`].
#[derive(Debug, Clone, Copy)]
pub struct MlrMclOptions {
    /// R-MCL parameters (inflation controls output granularity).
    pub mcl: MclOptions,
    /// Coarsening cascade parameters.
    pub coarsen: CoarsenOptions,
    /// R-MCL refinement iterations per intermediate level.
    pub iterations_per_level: usize,
}

impl Default for MlrMclOptions {
    fn default() -> Self {
        MlrMclOptions {
            mcl: MclOptions::default(),
            // Graphs at or below this size run single-level R-MCL. The
            // coarsen-project-refine path buys wall-clock on large graphs
            // but the projected flow starts refinement in a worse basin
            // (`experiments -- ablations`, ablation 3), so it is reserved
            // for inputs where single-level iteration is genuinely slow.
            coarsen: CoarsenOptions {
                target_nodes: 4000,
                ..Default::default()
            },
            iterations_per_level: 4,
        }
    }
}

/// Multi-Level Regularized MCL.
///
/// ```
/// use symclust_cluster::{ClusterAlgorithm, MlrMcl};
/// use symclust_graph::UnGraph;
/// // Two triangles joined by one edge.
/// let g = UnGraph::from_edges(6, &[(0,1),(1,2),(0,2),(3,4),(4,5),(3,5),(2,3)]).unwrap();
/// let c = MlrMcl::default().cluster(&g).unwrap();
/// assert_eq!(c.n_clusters(), 2);
/// assert!(c.same_cluster(0, 2) && !c.same_cluster(0, 3));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MlrMcl {
    /// Execution options.
    pub options: MlrMclOptions,
}

impl MlrMcl {
    /// Creates MLR-MCL with a given inflation (granularity knob).
    pub fn with_inflation(inflation: f64) -> Self {
        let mut options = MlrMclOptions::default();
        options.mcl.inflation = inflation;
        MlrMcl { options }
    }
}

/// Projects a coarse flow matrix onto the finer level: fine node `i`
/// inherits the flow row of its coarse parent, distributed uniformly over
/// each target coarse node's children, then renormalized.
fn project_flow(coarse_flow: &CsrMatrix, map: &[u32], n_fine: usize) -> CsrMatrix {
    // children[c] = fine nodes merged into coarse node c.
    let n_coarse = coarse_flow.n_rows();
    let mut child_count = vec![0u32; n_coarse];
    for &c in map {
        child_count[c as usize] += 1;
    }
    let mut child_start = vec![0usize; n_coarse + 1];
    for c in 0..n_coarse {
        child_start[c + 1] = child_start[c] + child_count[c] as usize;
    }
    let mut children = vec![0u32; n_fine];
    {
        let mut cursor = child_start.clone();
        for (fine, &c) in map.iter().enumerate() {
            children[cursor[c as usize]] = fine as u32;
            cursor[c as usize] += 1;
        }
    }

    let mut indptr = Vec::with_capacity(n_fine + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    for &fine_parent in map.iter().take(n_fine) {
        let parent = fine_parent as usize;
        scratch.clear();
        for (cj, v) in coarse_flow.row_iter(parent) {
            let cj = cj as usize;
            let kids = &children[child_start[cj]..child_start[cj + 1]];
            if kids.is_empty() {
                continue;
            }
            let share = v / kids.len() as f64;
            for &kid in kids {
                scratch.push((kid, share));
            }
        }
        scratch.sort_unstable_by_key(|&(c, _)| c);
        let sum: f64 = scratch.iter().map(|&(_, v)| v).sum();
        if sum > 0.0 {
            for &(c, v) in &scratch {
                indices.push(c);
                values.push(v / sum);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_parts_unchecked(n_fine, n_fine, indptr, indices, values)
}

impl MlrMcl {
    fn cluster_with(
        &self,
        g: &UnGraph,
        token: Option<&CancelToken>,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<Clustering> {
        if self.options.mcl.inflation <= 1.0 {
            return Err(ClusterError::InvalidConfig(format!(
                "inflation must exceed 1.0, got {}",
                self.options.mcl.inflation
            )));
        }
        if g.n_nodes() == 0 {
            return Ok(Clustering::single_cluster(0));
        }
        if let Some(t) = token {
            t.checkpoint()?;
        }
        let levels = coarsen_graph(g, &self.options.coarsen)?;

        // R-MCL to convergence on the coarsest graph.
        let coarsest = levels.last().map(|l| &l.graph).unwrap_or(g);
        let m_g_coarse = canonical_flow_capped(coarsest, self.options.mcl.max_graph_row_nnz);
        let (mut flow, _, mut converged) = rmcl_iterate_with(
            &m_g_coarse,
            m_g_coarse.clone(),
            &self.options.mcl,
            self.options.mcl.max_iter,
            token,
            metrics,
        )?;

        // Walk back up the hierarchy, refining at each level.
        for level_idx in (0..levels.len()).rev() {
            if let Some(t) = token {
                t.checkpoint()?;
            }
            let fine_graph = if level_idx == 0 {
                g
            } else {
                &levels[level_idx - 1].graph
            };
            let map = &levels[level_idx].map;
            let projected = project_flow(&flow, map, fine_graph.n_nodes());
            let m_g_fine = canonical_flow_capped(fine_graph, self.options.mcl.max_graph_row_nnz);
            let iters = if level_idx == 0 {
                self.options.mcl.max_iter
            } else {
                self.options.iterations_per_level
            };
            let (refined, _, level_converged) = rmcl_iterate_with(
                &m_g_fine,
                projected,
                &self.options.mcl,
                iters,
                token,
                metrics,
            )?;
            flow = refined;
            // Only the final (level-0) run gets the full iteration budget;
            // its convergence is what the best-effort flag reports.
            // Intermediate levels run a fixed handful of refinement steps
            // and are not expected to converge.
            if level_idx == 0 {
                converged = level_converged;
            }
        }
        Ok(extract_clusters(&flow).with_converged(converged))
    }
}

impl ClusterAlgorithm for MlrMcl {
    fn name(&self) -> String {
        "MLR-MCL".to_string()
    }

    fn cluster_ungraph(&self, g: &UnGraph) -> Result<Clustering> {
        self.cluster_with(g, None, None)
    }

    fn cluster_ungraph_cancellable(&self, g: &UnGraph, token: &CancelToken) -> Result<Clustering> {
        self.cluster_with(g, Some(token), None)
    }

    fn cluster_observed(
        &self,
        g: &UnGraph,
        token: &CancelToken,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<Clustering> {
        self.cluster_with(g, Some(token), metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring of `c` cliques of size `k`, adjacent cliques joined by 1 edge.
    fn clique_ring(c: usize, k: usize) -> UnGraph {
        let mut edges = Vec::new();
        for ci in 0..c {
            let base = ci * k;
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push((base + i, base + j));
                }
            }
            edges.push((base + k - 1, (base + k) % (c * k)));
        }
        UnGraph::from_edges(c * k, &edges).unwrap()
    }

    #[test]
    fn recovers_clique_ring_clusters() {
        let g = clique_ring(8, 6); // 48 nodes, forces no coarsening need
        let c = MlrMcl::default().cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 8, "sizes: {:?}", c.sizes());
        for clique in 0..8 {
            let first = c.cluster_of(clique * 6);
            for i in 0..6 {
                assert_eq!(c.cluster_of(clique * 6 + i), first);
            }
        }
    }

    #[test]
    fn multilevel_path_recovers_clusters_on_larger_graph() {
        // Force coarsening: 64 cliques of 8 = 512 nodes > target 100.
        let g = clique_ring(64, 8);
        let algo = MlrMcl {
            options: MlrMclOptions {
                coarsen: CoarsenOptions {
                    target_nodes: 100,
                    ..Default::default()
                },
                ..Default::default()
            },
        };
        let c = algo.cluster_ungraph(&g).unwrap();
        // Should find close to 64 clusters with cliques kept intact.
        assert!(
            (48..=80).contains(&c.n_clusters()),
            "found {} clusters",
            c.n_clusters()
        );
        let mut intact = 0;
        for clique in 0..64 {
            let first = c.cluster_of(clique * 8);
            if (0..8).all(|i| c.cluster_of(clique * 8 + i) == first) {
                intact += 1;
            }
        }
        assert!(intact >= 56, "only {intact}/64 cliques intact");
    }

    #[test]
    fn project_flow_distributes_over_children() {
        // Coarse: 2 nodes; flow row of coarse node 0 = [0.5, 0.5].
        let coarse_flow = CsrMatrix::from_dense(&[vec![0.5, 0.5], vec![0.0, 1.0]]);
        // Fine: 4 nodes; 0,1 -> coarse 0; 2,3 -> coarse 1.
        let map = vec![0u32, 0, 1, 1];
        let fine = project_flow(&coarse_flow, &map, 4);
        // Fine node 0: 0.5 split over children {0,1} (0.25 each) and 0.5
        // over {2,3}.
        assert!((fine.get(0, 0) - 0.25).abs() < 1e-12);
        assert!((fine.get(0, 3) - 0.25).abs() < 1e-12);
        assert!((fine.get(2, 2) - 0.5).abs() < 1e-12);
        for row in 0..4 {
            let sum: f64 = fine.row_values(row).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_graph() {
        let g = UnGraph::from_edges(0, &[]).unwrap();
        let c = MlrMcl::default().cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_nodes(), 0);
    }

    #[test]
    fn inflation_knob_changes_granularity() {
        let g = clique_ring(6, 5);
        let coarse = MlrMcl::with_inflation(1.3).cluster_ungraph(&g).unwrap();
        let fine = MlrMcl::with_inflation(3.0).cluster_ungraph(&g).unwrap();
        assert!(fine.n_clusters() >= coarse.n_clusters());
    }

    #[test]
    fn rejects_bad_inflation() {
        let g = clique_ring(2, 3);
        assert!(MlrMcl::with_inflation(0.9).cluster_ungraph(&g).is_err());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MlrMcl::default().name(), "MLR-MCL");
    }

    #[test]
    fn converged_flag_reports_exhausted_iteration_budget() {
        let g = clique_ring(8, 6);
        // A run with a normal budget converges and says so.
        let ok = MlrMcl::default().cluster_ungraph(&g).unwrap();
        assert!(ok.converged());
        // One single iteration cannot converge on this graph: the result is
        // best-effort and flagged, not an error.
        let mut options = MlrMclOptions::default();
        options.mcl.max_iter = 1;
        let best_effort = MlrMcl { options }.cluster_ungraph(&g).unwrap();
        assert!(!best_effort.converged());
        assert_eq!(best_effort.n_nodes(), g.n_nodes());
    }

    #[test]
    fn cancelled_token_aborts_clustering() {
        let g = clique_ring(8, 6);
        let token = CancelToken::new();
        token.cancel();
        let err = MlrMcl::default()
            .cluster_ungraph_cancellable(&g, &token)
            .unwrap_err();
        assert!(err.is_cancelled(), "got {err:?}");
    }

    #[test]
    fn live_token_matches_plain_clustering() {
        let g = clique_ring(8, 6);
        let token = CancelToken::new();
        let with_token = MlrMcl::default()
            .cluster_ungraph_cancellable(&g, &token)
            .unwrap();
        let plain = MlrMcl::default().cluster_ungraph(&g).unwrap();
        assert_eq!(with_token.assignments(), plain.assignments());
    }

    #[test]
    fn observed_run_records_mcl_counters() {
        use crate::mcl::metric_names;
        let g = clique_ring(8, 6);
        let m = MetricsRegistry::new();
        let token = CancelToken::new();
        let c = MlrMcl::default()
            .cluster_observed(&g, &token, Some(&m))
            .unwrap();
        assert!(c.converged());
        let snap = m.snapshot();
        assert_eq!(snap.counter(metric_names::RUNS), Some(1));
        assert!(snap.counter(metric_names::ITERATIONS).unwrap() >= 2);
        assert_eq!(snap.counter(metric_names::CONVERGED_RUNS), Some(1));
        assert_eq!(snap.counter(metric_names::NONCONVERGED_RUNS), None);
        // Converged run: nothing changed in the last iteration.
        assert_eq!(snap.gauge(metric_names::FINAL_RESIDUAL), Some(0.0));
    }
}

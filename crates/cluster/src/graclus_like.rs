//! Multilevel normalized-cut minimization via weighted kernel k-means, in
//! the style of Graclus (Dhillon, Guan & Kulis, IEEE TPAMI 2007 — the
//! paper's reference \[5\]).
//!
//! Dhillon et al. showed that minimizing normalized cut is equivalent to
//! weighted kernel k-means with kernel `K = σD⁻¹ + D⁻¹AD⁻¹` and node
//! weights `w_v = d_v` (the weighted degree). The "distance" from node `v`
//! to cluster `c` reduces to closed form in graph quantities:
//!
//! ```text
//! dist(v, c) ∝ −2·(σ·[v∈c] + links(v,c)/d_v)/s_c + (σ·s_c + l_c)/s_c²
//! ```
//!
//! where `s_c = Σ_{u∈c} d_u` (cluster volume) and `l_c = Σ_{u,u'∈c} A(u,u')`
//! (internal ordered-pair weight). Moving each node to its minimum-distance
//! neighboring cluster monotonically improves the kernel k-means objective,
//! i.e. the normalized cut. Like the real Graclus, we run this refinement at
//! every level of a heavy-edge-matching multilevel hierarchy.

use crate::clustering::Clustering;
use crate::coarsen::{coarsen_graph, lift_assignment, CoarsenOptions};
use crate::metis_like::{best_initial_partition, kway_refine};
use crate::{ClusterAlgorithm, ClusterError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use symclust_graph::UnGraph;

/// Options for [`GraclusLike`].
#[derive(Debug, Clone, Copy)]
pub struct GraclusOptions {
    /// Number of clusters.
    pub k: usize,
    /// Kernel regularization σ. Dhillon et al. add σD⁻¹ to make the
    /// kernel positive-definite; the side effect is a stay-bonus of 2σ/s_c
    /// per move comparison, so anything above ~1/avg_degree freezes the
    /// refinement. 0.0 (pure normalized-cut moves) works best in practice.
    pub sigma: f64,
    /// Kernel-k-means passes per level.
    pub refine_passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraclusOptions {
    fn default() -> Self {
        GraclusOptions {
            k: 8,
            sigma: 0.0,
            refine_passes: 8,
            seed: 0x6AC1,
        }
    }
}

/// Multilevel weighted-kernel-k-means normalized-cut clusterer.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraclusLike {
    /// Execution options.
    pub options: GraclusOptions,
}

impl GraclusLike {
    /// Creates a clusterer for `k` clusters.
    pub fn with_k(k: usize) -> Self {
        GraclusLike {
            options: GraclusOptions {
                k,
                ..Default::default()
            },
        }
    }
}

/// Normalized cut of a clustering: `Σ_c cut(c)/vol(c)` (Eq. 1 of the
/// paper, summed over clusters).
pub fn normalized_cut(g: &UnGraph, assignment: &[u32], k: usize) -> f64 {
    let degrees = g.weighted_degrees();
    let mut vol = vec![0.0f64; k];
    let mut internal = vec![0.0f64; k];
    for (v, &a) in assignment.iter().enumerate() {
        vol[a as usize] += degrees[v];
    }
    for (u, v, w) in g.adjacency().iter() {
        if assignment[u] == assignment[v as usize] {
            internal[assignment[u] as usize] += w;
        }
    }
    (0..k)
        .filter(|&c| vol[c] > 0.0)
        .map(|c| (vol[c] - internal[c]) / vol[c])
        .sum()
}

/// Weighted-kernel-k-means refinement passes; mutates `assignment` and
/// returns the number of moves.
pub fn kernel_kmeans_refine(
    g: &UnGraph,
    assignment: &mut [u32],
    k: usize,
    sigma: f64,
    passes: usize,
    seed: u64,
) -> usize {
    let n = g.n_nodes();
    let degrees = g.weighted_degrees();
    let mut volume = vec![0.0f64; k]; // s_c
    let mut internal = vec![0.0f64; k]; // l_c
    let mut count = vec![0usize; k];
    for (v, &a) in assignment.iter().enumerate() {
        volume[a as usize] += degrees[v];
        count[a as usize] += 1;
    }
    for (u, v, w) in g.adjacency().iter() {
        if assignment[u] == assignment[v as usize] {
            internal[assignment[u] as usize] += w;
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut links = vec![0.0f64; k];
    let mut touched: Vec<u32> = Vec::new();
    let mut total_moves = 0usize;
    for _ in 0..passes {
        order.shuffle(&mut rng);
        let mut moves = 0usize;
        for &v in &order {
            let d_v = degrees[v];
            if d_v <= 0.0 {
                continue; // isolated: no effect on NCut
            }
            let own = assignment[v] as usize;
            if count[own] <= 1 {
                continue; // never empty a cluster
            }
            touched.clear();
            let mut self_loop = 0.0f64;
            for (nb, w) in g.neighbors(v) {
                if nb as usize == v {
                    self_loop = w;
                    continue;
                }
                let p = assignment[nb as usize] as usize;
                if links[p] == 0.0 {
                    touched.push(p as u32);
                }
                links[p] += w;
            }
            // Distance to own cluster, evaluated with v included (the
            // standard batch kernel-k-means rule; the σ cross-term appears
            // only for the own cluster and acts as a stay-bonus — dropping
            // it systematically favors large clusters and collapses the
            // partition).
            let links_own = links[own]; // excludes self-loop
            let s_own = volume[own];
            let dist_own = if s_own > 0.0 {
                -2.0 * (sigma + (links_own + self_loop) / d_v) / s_own
                    + (sigma * s_own + internal[own]) / (s_own * s_own)
            } else {
                f64::INFINITY
            };
            let mut best: Option<(usize, f64)> = None;
            for &p in &touched {
                let p = p as usize;
                if p == own {
                    continue;
                }
                let s_c = volume[p];
                if s_c <= 0.0 {
                    continue;
                }
                let dist =
                    -2.0 * (links[p] / d_v) / s_c + (sigma * s_c + internal[p]) / (s_c * s_c);
                if dist < dist_own - 1e-15 && best.is_none_or(|(_, bd)| dist < bd) {
                    best = Some((p, dist));
                }
            }
            if let Some((p, _)) = best {
                volume[own] -= d_v;
                count[own] -= 1;
                internal[own] -= 2.0 * links_own + self_loop;
                volume[p] += d_v;
                count[p] += 1;
                internal[p] += 2.0 * links[p] + self_loop;
                assignment[v] = p as u32;
                moves += 1;
            }
            for &p in &touched {
                links[p as usize] = 0.0;
            }
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

impl ClusterAlgorithm for GraclusLike {
    fn name(&self) -> String {
        "Graclus".to_string()
    }

    fn cluster_ungraph(&self, g: &UnGraph) -> Result<Clustering> {
        let k = self.options.k;
        let n = g.n_nodes();
        if k == 0 {
            return Err(ClusterError::InvalidConfig("k must be positive".into()));
        }
        if n == 0 {
            return Ok(Clustering::single_cluster(0));
        }
        if k >= n {
            return Ok(Clustering::singletons(n));
        }
        let coarsen_opts = CoarsenOptions {
            target_nodes: (10 * k).max(200),
            seed: self.options.seed,
            ..Default::default()
        };
        let levels = coarsen_graph(g, &coarsen_opts)?;
        let (coarsest, coarsest_weights) = match levels.last() {
            Some(l) => (&l.graph, l.vertex_weights.clone()),
            None => (g, vec![1.0; n]),
        };
        let mut assignment = best_initial_partition(
            coarsest,
            &coarsest_weights,
            k,
            0.5,
            self.options.refine_passes,
            self.options.seed,
        );
        // An edge-cut pass first: cheap, and it hands kernel k-means a
        // starting point clear of the worst region-growing artifacts.
        kway_refine(
            coarsest,
            &coarsest_weights,
            &mut assignment,
            k,
            0.5,
            self.options.refine_passes,
            self.options.seed ^ 7,
        );
        kernel_kmeans_refine(
            coarsest,
            &mut assignment,
            k,
            self.options.sigma,
            self.options.refine_passes,
            self.options.seed ^ 1,
        );
        for level_idx in (0..levels.len()).rev() {
            let fine_graph = if level_idx == 0 {
                g
            } else {
                &levels[level_idx - 1].graph
            };
            assignment = lift_assignment(&assignment, &levels[level_idx].map);
            let fine_weights = if level_idx == 0 {
                vec![1.0; n]
            } else {
                levels[level_idx - 1].vertex_weights.clone()
            };
            kway_refine(
                fine_graph,
                &fine_weights,
                &mut assignment,
                k,
                0.5,
                self.options.refine_passes,
                self.options.seed ^ (level_idx as u64 + 11),
            );
            kernel_kmeans_refine(
                fine_graph,
                &mut assignment,
                k,
                self.options.sigma,
                self.options.refine_passes,
                self.options.seed ^ (level_idx as u64 + 2),
            );
        }
        Ok(Clustering::from_assignments(&assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_ring(c: usize, k: usize) -> UnGraph {
        let mut edges = Vec::new();
        for ci in 0..c {
            let base = ci * k;
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push((base + i, base + j));
                }
            }
            edges.push((base + k - 1, (base + k) % (c * k)));
        }
        UnGraph::from_edges(c * k, &edges).unwrap()
    }

    #[test]
    fn recovers_clique_ring() {
        let g = clique_ring(6, 6);
        let c = GraclusLike::with_k(6).cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 6);
        let mut intact = 0;
        for clique in 0..6 {
            let first = c.cluster_of(clique * 6);
            if (0..6).all(|i| c.cluster_of(clique * 6 + i) == first) {
                intact += 1;
            }
        }
        assert!(intact >= 5, "{intact}/6 cliques intact");
    }

    #[test]
    fn refinement_never_worsens_ncut() {
        let g = clique_ring(4, 6);
        let mut assignment: Vec<u32> = (0..24).map(|i| (i % 4) as u32).collect();
        let before = normalized_cut(&g, &assignment, 4);
        kernel_kmeans_refine(&g, &mut assignment, 4, 0.0, 10, 3);
        let after = normalized_cut(&g, &assignment, 4);
        assert!(
            after <= before + 1e-9,
            "ncut increased: {before} -> {after}"
        );
        assert!(after < before, "refinement made no progress");
    }

    #[test]
    fn normalized_cut_hand_computed() {
        // Two triangles joined by one edge, perfect split.
        let mut edges = vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        let g = UnGraph::from_edges(6, &std::mem::take(&mut edges)).unwrap();
        // vol of each side = 2*3 + 1 = 7, cut = 1 → ncut = 2/7.
        let ncut = normalized_cut(&g, &[0, 0, 0, 1, 1, 1], 2);
        assert!((ncut - 2.0 / 7.0).abs() < 1e-12);
        // Trivial single cluster has ncut 0.
        assert_eq!(normalized_cut(&g, &[0; 6], 1), 0.0);
    }

    #[test]
    fn multilevel_on_larger_graph() {
        let g = clique_ring(40, 8); // 320 nodes -> coarsening kicks in
        let c = GraclusLike::with_k(40).cluster_ungraph(&g).unwrap();
        let ncut = normalized_cut(&g, c.assignments(), c.n_clusters());
        // Ideal ncut: 40 clusters each with cut 2, vol 8·7+2 = 58 → ~1.38.
        assert!(ncut < 3.0, "ncut = {ncut}");
        assert_eq!(c.n_clusters(), 40);
    }

    #[test]
    fn handles_isolated_nodes() {
        let g = UnGraph::from_edges(5, &[(0, 1), (1, 2)]).unwrap();
        let c = GraclusLike::with_k(2).cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_nodes(), 5);
        assert!(c.n_clusters() <= 2 + 1); // isolated nodes may pool
    }

    #[test]
    fn edge_cases() {
        let g = clique_ring(2, 3);
        assert!(GraclusLike::with_k(0).cluster_ungraph(&g).is_err());
        let c = GraclusLike::with_k(10).cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 6); // k >= n → singletons
        let empty = UnGraph::from_edges(0, &[]).unwrap();
        assert_eq!(
            GraclusLike::with_k(2)
                .cluster_ungraph(&empty)
                .unwrap()
                .n_nodes(),
            0
        );
    }

    #[test]
    fn sigma_does_not_break_clustering() {
        let g = clique_ring(4, 5);
        for sigma in [0.0, 0.5, 2.0] {
            let algo = GraclusLike {
                options: GraclusOptions {
                    k: 4,
                    sigma,
                    ..Default::default()
                },
            };
            let c = algo.cluster_ungraph(&g).unwrap();
            assert_eq!(c.n_clusters(), 4, "sigma {sigma}");
        }
    }
}

//! Multilevel k-way graph partitioning in the style of Metis
//! (Karypis & Kumar, SIAM J. Sci. Comput. 1999).
//!
//! Three phases: (1) coarsen by heavy-edge matching, (2) greedy
//! graph-growing initial partition on the coarsest graph, (3) uncoarsen with
//! boundary greedy (FM-flavored) k-way refinement at every level, moving
//! boundary vertices to the neighboring partition with the highest edge-cut
//! gain subject to a balance constraint on vertex weight.
//!
//! Produces exactly `k` parts, minimizing edge cut — the behavior of the
//! Metis binary the paper benchmarks.

use crate::clustering::Clustering;
use crate::coarsen::{coarsen_graph, CoarsenOptions};
use crate::{ClusterAlgorithm, ClusterError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use symclust_graph::UnGraph;

/// Options for [`MetisLike`].
#[derive(Debug, Clone, Copy)]
pub struct MetisOptions {
    /// Number of parts to produce.
    pub k: usize,
    /// Allowed imbalance: a part may weigh at most `(1 + imbalance)`
    /// times the average part weight.
    pub imbalance: f64,
    /// Refinement passes per level.
    pub refine_passes: usize,
    /// Coarsening seed (also seeds initial-partition tie-breaking).
    pub seed: u64,
}

impl Default for MetisOptions {
    fn default() -> Self {
        MetisOptions {
            k: 8,
            imbalance: 0.10,
            refine_passes: 4,
            seed: 0x11E716,
        }
    }
}

/// Multilevel k-way partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetisLike {
    /// Execution options.
    pub options: MetisOptions,
}

impl MetisLike {
    /// Creates a partitioner for `k` parts.
    pub fn with_k(k: usize) -> Self {
        MetisLike {
            options: MetisOptions {
                k,
                ..Default::default()
            },
        }
    }
}

/// Greedy graph-growing initial partition: grow each part from a seed by
/// repeatedly absorbing the unassigned node most strongly connected to the
/// region, until the part reaches its weight target.
pub fn region_growing_partition(
    g: &UnGraph,
    vertex_weights: &[f64],
    k: usize,
    seed: u64,
) -> Vec<u32> {
    let n = g.n_nodes();
    let total_weight: f64 = vertex_weights.iter().sum();
    let target = total_weight / k as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);

    let mut assignment = vec![u32::MAX; n];
    let mut order_cursor = 0usize;
    // connection[v] = total edge weight from v into the growing region.
    let mut connection: Vec<f64> = vec![0.0; n];
    for part in 0..k {
        while order_cursor < n && assignment[order[order_cursor]] != u32::MAX {
            order_cursor += 1;
        }
        if order_cursor >= n {
            break;
        }
        connection.iter_mut().for_each(|c| *c = 0.0);
        let seed_node = order[order_cursor];
        assignment[seed_node] = part as u32;
        let mut part_weight = vertex_weights[seed_node];
        let mut frontier: Vec<u32> = Vec::new();
        for (nb, w) in g.neighbors(seed_node) {
            if assignment[nb as usize] == u32::MAX {
                if connection[nb as usize] == 0.0 {
                    frontier.push(nb);
                }
                connection[nb as usize] += w;
            }
        }
        while part_weight < target {
            // Pop the best-connected unassigned frontier node.
            let mut best: Option<(usize, usize, f64)> = None; // (frontier idx, node, conn)
            for (fi, &node) in frontier.iter().enumerate() {
                let node = node as usize;
                if assignment[node] != u32::MAX {
                    continue;
                }
                let c = connection[node];
                if best.is_none_or(|(_, _, bc)| c > bc) {
                    best = Some((fi, node, c));
                }
            }
            let Some((fi, node, _)) = best else {
                break; // region exhausted (disconnected component)
            };
            frontier.swap_remove(fi);
            assignment[node] = part as u32;
            part_weight += vertex_weights[node];
            for (nb, w) in g.neighbors(node) {
                if assignment[nb as usize] == u32::MAX {
                    if connection[nb as usize] == 0.0 {
                        frontier.push(nb);
                    }
                    connection[nb as usize] += w;
                }
            }
        }
    }
    // Leftovers (disconnected remnants) attach to the part they connect to
    // most strongly; isolated leftovers go to the lightest part. Sweep
    // repeatedly so chains hanging off a single attachment point resolve.
    let mut part_weight_tmp = vec![0.0f64; k];
    for (v, &a) in assignment.iter().enumerate() {
        if a != u32::MAX {
            part_weight_tmp[a as usize] += vertex_weights[v];
        }
    }
    loop {
        let mut changed = false;
        let mut any_left = false;
        for v in 0..n {
            if assignment[v] != u32::MAX {
                continue;
            }
            let mut conn = vec![0.0f64; k];
            let mut seen_any = false;
            for (nb, w) in g.neighbors(v) {
                let a = assignment[nb as usize];
                if a != u32::MAX {
                    conn[a as usize] += w;
                    seen_any = true;
                }
            }
            if seen_any {
                let best = (0..k)
                    .max_by(|&a, &b| conn[a].total_cmp(&conn[b]))
                    .expect("k >= 1");
                assignment[v] = best as u32;
                part_weight_tmp[best] += vertex_weights[v];
                changed = true;
            } else {
                any_left = true;
            }
        }
        if !any_left {
            break;
        }
        if !changed {
            // Remaining nodes are isolated from every region: balance them.
            for v in 0..n {
                if assignment[v] == u32::MAX {
                    let lightest = (0..k)
                        .min_by(|&a, &b| part_weight_tmp[a].total_cmp(&part_weight_tmp[b]))
                        .expect("k >= 1");
                    assignment[v] = lightest as u32;
                    part_weight_tmp[lightest] += vertex_weights[v];
                }
            }
            break;
        }
    }
    // Repair empty parts by stealing single nodes from populous parts.
    let mut part_count = vec![0usize; k];
    for &a in assignment.iter() {
        part_count[a as usize] += 1;
    }
    for part in 0..k {
        if part_count[part] > 0 {
            continue;
        }
        let donor = (0..k).max_by_key(|&p| part_count[p]).expect("k >= 1");
        if part_count[donor] <= 1 {
            continue; // cannot repair without emptying another part
        }
        if let Some(victim) = (0..n).find(|&v| assignment[v] as usize == donor) {
            assignment[victim] = part as u32;
            part_count[donor] -= 1;
            part_count[part] += 1;
        }
    }
    assignment
}

/// Grows one region from successive seeds until it reaches `target` total
/// vertex weight; returns a 0/1 side assignment. Unlike simultaneous k-way
/// growing, this cannot strand seeds: when a region's frontier is exhausted
/// (disconnected graph), growth restarts from a fresh unassigned seed.
fn grow_bisection(g: &UnGraph, vertex_weights: &[f64], target: f64, seed: u64) -> Vec<u32> {
    let n = g.n_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut side = vec![1u32; n];
    let mut weight0 = 0.0f64;
    let mut connection = vec![0.0f64; n];
    let mut frontier: Vec<u32> = Vec::new();
    let mut order_cursor = 0usize;
    while weight0 < target {
        // Find the best-connected frontier node still on side 1, or seed.
        let mut best: Option<(usize, usize, f64)> = None;
        for (fi, &node) in frontier.iter().enumerate() {
            let node = node as usize;
            if side[node] == 0 {
                continue;
            }
            let c = connection[node];
            if best.is_none_or(|(_, _, bc)| c > bc) {
                best = Some((fi, node, c));
            }
        }
        let node = match best {
            Some((fi, node, _)) => {
                frontier.swap_remove(fi);
                node
            }
            None => {
                while order_cursor < n && side[order[order_cursor]] == 0 {
                    order_cursor += 1;
                }
                if order_cursor >= n {
                    break;
                }
                order[order_cursor]
            }
        };
        side[node] = 0;
        weight0 += vertex_weights[node];
        for (nb, w) in g.neighbors(node) {
            if side[nb as usize] == 1 {
                if connection[nb as usize] == 0.0 {
                    frontier.push(nb);
                }
                connection[nb as usize] += w;
            }
        }
    }
    side
}

/// Recursive-bisection initial partition: split the graph roughly
/// `k_left : k_right`, refine the two-way cut, and recurse into the induced
/// halves. Far more robust than simultaneous k-way region growing, which can
/// strand seeds inside already-consumed regions.
pub fn recursive_bisection_partition(
    g: &UnGraph,
    vertex_weights: &[f64],
    k: usize,
    imbalance: f64,
    refine_passes: usize,
    seed: u64,
) -> Vec<u32> {
    let n = g.n_nodes();
    if k <= 1 || n == 0 {
        return vec![0; n];
    }
    let k_left = k / 2;
    let k_right = k - k_left;
    let total: f64 = vertex_weights.iter().sum();
    let target_left = total * k_left as f64 / k as f64;
    let mut side = grow_bisection(g, vertex_weights, target_left, seed);
    // Two-way refinement with side-specific weight caps so odd splits
    // (e.g. 1:2) are respected.
    let caps = [
        target_left * (1.0 + imbalance),
        (total - target_left) * (1.0 + imbalance),
    ];
    kway_refine_caps(
        g,
        vertex_weights,
        &mut side,
        2,
        &caps,
        refine_passes,
        seed ^ 0x9E37,
    );
    // Recurse into each side.
    let mut left_nodes: Vec<u32> = Vec::new();
    let mut right_nodes: Vec<u32> = Vec::new();
    for (v, &s) in side.iter().enumerate() {
        if s == 0 {
            left_nodes.push(v as u32);
        } else {
            right_nodes.push(v as u32);
        }
    }
    let mut assignment = vec![0u32; n];
    let halves = [
        (&left_nodes, k_left, 0u32),
        (&right_nodes, k_right, k_left as u32),
    ];
    for (nodes, sub_k, offset) in halves {
        if nodes.is_empty() {
            continue;
        }
        let sub_weights: Vec<f64> = nodes.iter().map(|&v| vertex_weights[v as usize]).collect();
        let sub_assignment = if sub_k <= 1 {
            vec![0u32; nodes.len()]
        } else {
            let sub = g.induced_subgraph(nodes);
            recursive_bisection_partition(
                &sub,
                &sub_weights,
                sub_k,
                imbalance,
                refine_passes,
                seed.wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(offset as u64 + 1),
            )
        };
        for (i, &v) in nodes.iter().enumerate() {
            assignment[v as usize] = offset + sub_assignment[i];
        }
    }
    // Guarantee k non-empty parts when possible: donate from populous parts.
    let mut part_count = vec![0usize; k];
    for &a in &assignment {
        part_count[a as usize] += 1;
    }
    for part in 0..k {
        if part_count[part] > 0 {
            continue;
        }
        let donor = (0..k).max_by_key(|&p| part_count[p]).expect("k >= 1");
        if part_count[donor] <= 1 {
            continue;
        }
        if let Some(victim) = (0..n).find(|&v| assignment[v] as usize == donor) {
            assignment[victim] = part as u32;
            part_count[donor] -= 1;
            part_count[part] += 1;
        }
    }
    assignment
}

/// Picks the better of the two initial-partition strategies by edge cut
/// after one refinement pass. Recursive bisection is robust on sparse
/// modular graphs (simultaneous growing strands seeds); plain region
/// growing often wins on dense similarity graphs (`experiments --
/// ablations`, ablation 4). Computing both is cheap next to refinement.
pub fn best_initial_partition(
    g: &UnGraph,
    vertex_weights: &[f64],
    k: usize,
    imbalance: f64,
    refine_passes: usize,
    seed: u64,
) -> Vec<u32> {
    let mut rb =
        recursive_bisection_partition(g, vertex_weights, k, imbalance, refine_passes, seed);
    kway_refine(g, vertex_weights, &mut rb, k, imbalance, 1, seed ^ 21);
    let mut rg = region_growing_partition(g, vertex_weights, k, seed);
    kway_refine(g, vertex_weights, &mut rg, k, imbalance, 1, seed ^ 22);
    let rb_has_all = {
        let mut seen = vec![false; k];
        rb.iter().for_each(|&a| seen[a as usize] = true);
        seen.iter().all(|&s| s)
    };
    let rg_has_all = {
        let mut seen = vec![false; k];
        rg.iter().for_each(|&a| seen[a as usize] = true);
        seen.iter().all(|&s| s)
    };
    match (rb_has_all, rg_has_all) {
        (true, false) => rb,
        (false, true) => rg,
        _ => {
            if edge_cut(g, &rg) < edge_cut(g, &rb) {
                rg
            } else {
                rb
            }
        }
    }
}

/// Edge-cut of a partition: total weight of edges crossing parts.
pub fn edge_cut(g: &UnGraph, assignment: &[u32]) -> f64 {
    let mut cut = 0.0;
    for (u, v, w) in g.adjacency().iter() {
        if (u as u32) < v && assignment[u] != assignment[v as usize] {
            cut += w;
        }
    }
    cut
}

/// One or more passes of boundary greedy k-way refinement. Mutates
/// `assignment`; returns the number of moves made.
pub fn kway_refine(
    g: &UnGraph,
    vertex_weights: &[f64],
    assignment: &mut [u32],
    k: usize,
    imbalance: f64,
    passes: usize,
    seed: u64,
) -> usize {
    let total_weight: f64 = vertex_weights.iter().sum();
    let max_weight = (1.0 + imbalance) * total_weight / k as f64;
    let caps = vec![max_weight; k];
    kway_refine_caps(g, vertex_weights, assignment, k, &caps, passes, seed)
}

/// [`kway_refine`] with a separate weight cap per part (used by recursive
/// bisection for uneven splits). Mutates `assignment`; returns move count.
pub fn kway_refine_caps(
    g: &UnGraph,
    vertex_weights: &[f64],
    assignment: &mut [u32],
    k: usize,
    max_weights: &[f64],
    passes: usize,
    seed: u64,
) -> usize {
    let n = g.n_nodes();
    let mut part_weight = vec![0.0f64; k];
    let mut part_count = vec![0usize; k];
    for (v, &a) in assignment.iter().enumerate() {
        part_weight[a as usize] += vertex_weights[v];
        part_count[a as usize] += 1;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut total_moves = 0usize;
    // Scratch: connectivity of the current node to each part.
    let mut conn = vec![0.0f64; k];
    let mut touched: Vec<u32> = Vec::new();
    for _ in 0..passes {
        order.shuffle(&mut rng);
        let mut moves = 0usize;
        for &v in &order {
            let own = assignment[v] as usize;
            if part_count[own] <= 1 {
                continue; // never empty a part
            }
            touched.clear();
            let mut is_boundary = false;
            for (nb, w) in g.neighbors(v) {
                if nb as usize == v {
                    continue;
                }
                let p = assignment[nb as usize] as usize;
                if conn[p] == 0.0 {
                    touched.push(p as u32);
                }
                conn[p] += w;
                if p != own {
                    is_boundary = true;
                }
            }
            if is_boundary {
                let own_conn = conn[own];
                let mut best: Option<(usize, f64)> = None;
                for &p in &touched {
                    let p = p as usize;
                    if p == own {
                        continue;
                    }
                    let gain = conn[p] - own_conn;
                    if gain > 1e-12
                        && part_weight[p] + vertex_weights[v] <= max_weights[p]
                        && best.is_none_or(|(_, bg)| gain > bg)
                    {
                        best = Some((p, gain));
                    }
                }
                if let Some((p, _)) = best {
                    part_weight[own] -= vertex_weights[v];
                    part_count[own] -= 1;
                    part_weight[p] += vertex_weights[v];
                    part_count[p] += 1;
                    assignment[v] = p as u32;
                    moves += 1;
                }
            }
            for &p in &touched {
                conn[p as usize] = 0.0;
            }
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

impl ClusterAlgorithm for MetisLike {
    fn name(&self) -> String {
        "Metis".to_string()
    }

    fn cluster_ungraph(&self, g: &UnGraph) -> Result<Clustering> {
        let k = self.options.k;
        let n = g.n_nodes();
        if k == 0 {
            return Err(ClusterError::InvalidConfig("k must be positive".into()));
        }
        if n == 0 {
            return Ok(Clustering::single_cluster(0));
        }
        if k >= n {
            return Ok(Clustering::singletons(n));
        }
        // Coarsen, but never below ~10 nodes per part.
        let coarsen_opts = CoarsenOptions {
            target_nodes: (10 * k).max(200),
            seed: self.options.seed,
            ..Default::default()
        };
        let levels = coarsen_graph(g, &coarsen_opts)?;
        let (coarsest, coarsest_weights) = match levels.last() {
            Some(l) => (&l.graph, l.vertex_weights.clone()),
            None => (g, vec![1.0; n]),
        };

        let mut assignment = best_initial_partition(
            coarsest,
            &coarsest_weights,
            k,
            self.options.imbalance,
            self.options.refine_passes,
            self.options.seed,
        );
        kway_refine(
            coarsest,
            &coarsest_weights,
            &mut assignment,
            k,
            self.options.imbalance,
            self.options.refine_passes,
            self.options.seed ^ 1,
        );

        // Uncoarsen with refinement at each level.
        for level_idx in (0..levels.len()).rev() {
            let (fine_graph, fine_weights): (&UnGraph, Vec<f64>) = if level_idx == 0 {
                (g, vec![1.0; n])
            } else {
                (
                    &levels[level_idx - 1].graph,
                    levels[level_idx - 1].vertex_weights.clone(),
                )
            };
            let map = &levels[level_idx].map;
            assignment = crate::coarsen::lift_assignment(&assignment, map);
            kway_refine(
                fine_graph,
                &fine_weights,
                &mut assignment,
                k,
                self.options.imbalance,
                self.options.refine_passes,
                self.options.seed ^ (level_idx as u64 + 2),
            );
        }
        Ok(Clustering::from_assignments(&assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_ring(c: usize, k: usize) -> UnGraph {
        let mut edges = Vec::new();
        for ci in 0..c {
            let base = ci * k;
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push((base + i, base + j));
                }
            }
            edges.push((base + k - 1, (base + k) % (c * k)));
        }
        UnGraph::from_edges(c * k, &edges).unwrap()
    }

    #[test]
    fn produces_exactly_k_balanced_parts() {
        let g = clique_ring(8, 6);
        let c = MetisLike::with_k(8).cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 8);
        let sizes = c.sizes();
        for &s in &sizes {
            assert!((3..=9).contains(&s), "sizes {sizes:?}");
        }
    }

    #[test]
    fn cuts_cliques_cleanly() {
        let g = clique_ring(4, 8);
        let c = MetisLike::with_k(4).cluster_ungraph(&g).unwrap();
        // Edge cut should be exactly the 4 bridge edges.
        let cut = edge_cut(&g, c.assignments());
        assert_eq!(cut, 4.0, "cut = {cut}");
    }

    #[test]
    fn refinement_reduces_cut() {
        let g = clique_ring(4, 6);
        // Deliberately bad partition: stripes across cliques.
        let mut assignment: Vec<u32> = (0..24).map(|i| (i % 4) as u32).collect();
        let before = edge_cut(&g, &assignment);
        kway_refine(&g, &[1.0; 24], &mut assignment, 4, 0.3, 8, 3);
        let after = edge_cut(&g, &assignment);
        assert!(after < before, "cut {before} -> {after}");
    }

    #[test]
    fn region_growing_covers_all_nodes() {
        let g = clique_ring(3, 5);
        let a = region_growing_partition(&g, &[1.0; 15], 3, 1);
        assert!(a.iter().all(|&x| x < 3));
        for part in 0..3u32 {
            assert!(a.contains(&part), "part {part} empty");
        }
    }

    #[test]
    fn multilevel_on_larger_graph() {
        let g = clique_ring(32, 8); // 256 nodes
        let c = MetisLike::with_k(32).cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 32);
        // Most cliques should be intact.
        let mut intact = 0;
        for clique in 0..32 {
            let first = c.cluster_of(clique * 8);
            if (0..8).all(|i| c.cluster_of(clique * 8 + i) == first) {
                intact += 1;
            }
        }
        assert!(intact >= 24, "only {intact}/32 cliques intact");
    }

    #[test]
    fn k_equal_n_gives_singletons() {
        let g = clique_ring(2, 3);
        let c = MetisLike::with_k(6).cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 6);
    }

    #[test]
    fn rejects_k_zero_and_handles_empty() {
        let g = clique_ring(2, 3);
        assert!(MetisLike::with_k(0).cluster_ungraph(&g).is_err());
        let empty = UnGraph::from_edges(0, &[]).unwrap();
        let c = MetisLike::with_k(3).cluster_ungraph(&empty).unwrap();
        assert_eq!(c.n_nodes(), 0);
    }

    #[test]
    fn handles_disconnected_graph() {
        let g = UnGraph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let c = MetisLike::with_k(3).cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 3);
    }

    #[test]
    fn edge_cut_hand_computed() {
        let g = UnGraph::from_weighted_edges(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)]).unwrap();
        let cut = edge_cut(&g, &[0, 0, 1, 1]);
        assert_eq!(cut, 3.0);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0.0);
    }
}

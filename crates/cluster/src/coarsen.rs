//! Multilevel coarsening via heavy-edge matching (HEM).
//!
//! Shared by all three multilevel algorithms (MLR-MCL, Metis-like,
//! Graclus-like). Nodes are visited in random order; each unmatched node is
//! matched to the unmatched neighbor with the heaviest connecting edge, and
//! matched pairs collapse into one coarse node. Edge weights between coarse
//! nodes are summed; vertex weights accumulate so balance constraints can be
//! enforced on the original node mass.

use crate::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use symclust_graph::UnGraph;
use symclust_sparse::CooMatrix;

/// Options controlling the coarsening cascade.
#[derive(Debug, Clone, Copy)]
pub struct CoarsenOptions {
    /// Stop when the graph has at most this many nodes.
    pub target_nodes: usize,
    /// Stop if a level shrinks the node count by less than this factor
    /// (guards against star-like graphs that match poorly).
    pub min_shrink: f64,
    /// Maximum number of levels.
    pub max_levels: usize,
    /// RNG seed for the visit order.
    pub seed: u64,
}

impl Default for CoarsenOptions {
    fn default() -> Self {
        CoarsenOptions {
            target_nodes: 1000,
            min_shrink: 0.95,
            max_levels: 30,
            seed: 0xC0A53,
        }
    }
}

/// One level of the coarsening hierarchy.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarse graph.
    pub graph: UnGraph,
    /// For each node of the *finer* graph, its coarse node id.
    pub map: Vec<u32>,
    /// Total vertex weight (original node count) per coarse node.
    pub vertex_weights: Vec<f64>,
}

/// Computes one heavy-edge matching pass; returns the fine→coarse map and
/// the number of coarse nodes.
pub fn heavy_edge_matching(g: &UnGraph, seed: u64) -> (Vec<u32>, usize) {
    let n = g.n_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut mate: Vec<u32> = vec![u32::MAX; n];
    for &u in &order {
        if mate[u] != u32::MAX {
            continue;
        }
        let mut best: Option<(u32, f64)> = None;
        for (v, w) in g.neighbors(u) {
            if v as usize == u || mate[v as usize] != u32::MAX {
                continue;
            }
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((v, w));
            }
        }
        match best {
            Some((v, _)) => {
                mate[u] = v;
                mate[v as usize] = u as u32;
            }
            None => mate[u] = u as u32, // stays alone
        }
    }
    // Assign coarse ids: the smaller endpoint of each pair owns the id.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n {
        if map[u] != u32::MAX {
            continue;
        }
        let m = mate[u] as usize;
        map[u] = next;
        if m != u {
            map[m] = next;
        }
        next += 1;
    }
    (map, next as usize)
}

/// Collapses `g` according to a fine→coarse map, summing edge and vertex
/// weights. Self-edges created by collapsed pairs are kept (they carry the
/// internal weight, which Graclus-style refinement needs).
pub fn project_graph(
    g: &UnGraph,
    map: &[u32],
    n_coarse: usize,
    fine_vertex_weights: &[f64],
) -> Result<(UnGraph, Vec<f64>)> {
    let mut coo = CooMatrix::with_capacity(n_coarse, n_coarse, g.adjacency().nnz());
    for (u, v, w) in g.adjacency().iter() {
        let (cu, cv) = (map[u] as usize, map[v as usize] as usize);
        coo.push(cu, cv, w)?;
    }
    let adj = coo.to_csr();
    let mut weights = vec![0.0f64; n_coarse];
    for (u, &c) in map.iter().enumerate() {
        weights[c as usize] += fine_vertex_weights[u];
    }
    Ok((UnGraph::from_symmetric_unchecked(adj), weights))
}

/// Builds the full coarsening cascade. `levels[0]` is the first coarse
/// graph (one HEM pass from the input); the last entry is the coarsest.
/// Returns an empty vec when the input is already at or below target size.
pub fn coarsen_graph(g: &UnGraph, opts: &CoarsenOptions) -> Result<Vec<CoarseLevel>> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = g.clone();
    let mut current_weights = vec![1.0f64; g.n_nodes()];
    for level in 0..opts.max_levels {
        if current.n_nodes() <= opts.target_nodes {
            break;
        }
        let (map, n_coarse) = heavy_edge_matching(&current, opts.seed.wrapping_add(level as u64));
        if (n_coarse as f64) > opts.min_shrink * current.n_nodes() as f64 {
            break; // matching stalled
        }
        let (coarse, weights) = project_graph(&current, &map, n_coarse, &current_weights)?;
        levels.push(CoarseLevel {
            graph: coarse.clone(),
            map,
            vertex_weights: weights.clone(),
        });
        current = coarse;
        current_weights = weights;
    }
    Ok(levels)
}

/// Lifts a coarse-level assignment back to the finer level.
pub fn lift_assignment(coarse_assignment: &[u32], map: &[u32]) -> Vec<u32> {
    map.iter().map(|&c| coarse_assignment[c as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_path() -> UnGraph {
        // 0 -5- 1 -1- 2 -5- 3 : HEM should match (0,1) and (2,3).
        UnGraph::from_weighted_edges(4, &[(0, 1, 5.0), (1, 2, 1.0), (2, 3, 5.0)]).unwrap()
    }

    #[test]
    fn hem_prefers_heavy_edges() {
        let g = weighted_path();
        let (map, n) = heavy_edge_matching(&g, 1);
        assert_eq!(n, 2);
        assert_eq!(map[0], map[1]);
        assert_eq!(map[2], map[3]);
        assert_ne!(map[0], map[2]);
    }

    #[test]
    fn hem_isolated_nodes_stay_alone() {
        let g = UnGraph::from_edges(3, &[(0, 1)]).unwrap();
        let (map, n) = heavy_edge_matching(&g, 1);
        assert_eq!(n, 2);
        assert_eq!(map[0], map[1]);
        assert_ne!(map[2], map[0]);
    }

    #[test]
    fn project_sums_weights_and_creates_self_loops() {
        let g = weighted_path();
        let (map, n) = heavy_edge_matching(&g, 1);
        let (coarse, weights) = project_graph(&g, &map, n, &[1.0; 4]).unwrap();
        assert_eq!(coarse.n_nodes(), 2);
        // Internal weight becomes a self-loop of weight 2*5 (both triangle
        // halves of the symmetric matrix collapse onto the diagonal).
        let c0 = map[0] as usize;
        assert_eq!(coarse.adjacency().get(c0, c0), 10.0);
        // The cross edge 1-2 survives with weight 1.
        let c2 = map[2] as usize;
        assert_eq!(coarse.weight(c0, c2), 1.0);
        assert_eq!(weights, vec![2.0, 2.0]);
    }

    #[test]
    fn cascade_reaches_target() {
        // A 64-cycle should coarsen roughly by half per level.
        let edges: Vec<(usize, usize)> = (0..64).map(|i| (i, (i + 1) % 64)).collect();
        let g = UnGraph::from_edges(64, &edges).unwrap();
        let levels = coarsen_graph(
            &g,
            &CoarsenOptions {
                target_nodes: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!levels.is_empty());
        let last = levels.last().unwrap();
        assert!(
            last.graph.n_nodes() <= 20,
            "coarsest = {}",
            last.graph.n_nodes()
        );
        // Vertex weights always sum to the original node count.
        for level in &levels {
            let total: f64 = level.vertex_weights.iter().sum();
            assert_eq!(total, 64.0);
        }
    }

    #[test]
    fn cascade_noop_for_small_graph() {
        let g = weighted_path();
        let levels = coarsen_graph(&g, &CoarsenOptions::default()).unwrap();
        assert!(levels.is_empty());
    }

    #[test]
    fn lift_assignment_follows_map() {
        let coarse = vec![5u32, 9u32];
        let map = vec![0u32, 0, 1, 1];
        assert_eq!(lift_assignment(&coarse, &map), vec![5, 5, 9, 9]);
    }
}

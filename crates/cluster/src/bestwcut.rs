//! BestWCut — directed spectral clustering by weighted cuts
//! (Meila & Pentney, SDM 2007 — the paper's reference \[17\]).
//!
//! Meila & Pentney generalize normalized cuts to directed graphs through the
//! `WCut` family (Eq. 4 of the paper), parameterized by node-weight vectors
//! `T, T'`. Each weight choice induces a symmetric Laplacian-like operator
//!
//! ```text
//! L_T = I − (Θ^{1/2} P Θ^{-1/2} + Θ^{-1/2} Pᵀ Θ^{1/2}) / 2,   Θ = diag(T)
//! ```
//!
//! (for `T = π`, the stationary distribution, this is exactly Eq. 5 — the
//! directed Laplacian of Zhou et al. and Chung). The spectral relaxation
//! clusters the rows of the bottom-`k` eigenvector embedding, scaled by
//! `Θ^{-1/2}`, with k-means. **Best**WCut tries each candidate weighting and
//! keeps the clustering with the lowest resulting directed WCut — which is
//! also why it needs several expensive eigendecompositions per run, the
//! scalability weakness the paper highlights (it never finished on their
//! Wikipedia dataset; Figure 6b shows orders-of-magnitude slower runtimes
//! than symmetrization + MLR-MCL/Metis/Graclus).

use crate::clustering::Clustering;
use crate::kmeans::KMeansOptions;
use crate::spectral::cluster_embedding;
use crate::{ClusterError, Result};
use symclust_graph::DiGraph;
use symclust_sparse::{
    lanczos_smallest, ops, pagerank, CsrMatrix, LanczosOptions, PageRankOptions,
};

/// Candidate node-weight vectors for the WCut objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WCutWeights {
    /// `T = π`, the random-walk stationary distribution: recovers the
    /// directed normalized cut of Zhou et al. (Eq. 3/5 of the paper).
    Stationary,
    /// `T = in-degree + out-degree`.
    Degree,
    /// `T = 1` (uniform weights).
    Uniform,
}

impl WCutWeights {
    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            WCutWeights::Stationary => "stationary",
            WCutWeights::Degree => "degree",
            WCutWeights::Uniform => "uniform",
        }
    }
}

/// Options for [`BestWCut`].
#[derive(Debug, Clone)]
pub struct BestWCutOptions {
    /// Number of clusters (and eigenvectors per candidate).
    pub k: usize,
    /// Teleport probability for the stationary distribution.
    pub teleport: f64,
    /// Candidate weightings; the best-scoring clustering wins.
    pub candidates: Vec<WCutWeights>,
    /// k-means settings for the spectral embedding.
    pub kmeans: KMeansOptions,
    /// Lanczos settings.
    pub lanczos: LanczosOptions,
}

impl Default for BestWCutOptions {
    fn default() -> Self {
        BestWCutOptions {
            k: 8,
            teleport: 0.05,
            candidates: vec![
                WCutWeights::Stationary,
                WCutWeights::Degree,
                WCutWeights::Uniform,
            ],
            kmeans: KMeansOptions::default(),
            lanczos: LanczosOptions::default(),
        }
    }
}

/// The Meila–Pentney weighted-cut spectral baseline.
#[derive(Debug, Clone, Default)]
pub struct BestWCut {
    /// Execution options.
    pub options: BestWCutOptions,
}

impl BestWCut {
    /// Creates BestWCut for `k` clusters.
    pub fn with_k(k: usize) -> Self {
        BestWCut {
            options: BestWCutOptions {
                k,
                ..Default::default()
            },
        }
    }

    /// Algorithm name used in experiment tables.
    pub fn name(&self) -> String {
        "BestWCut".to_string()
    }

    fn weight_vector(&self, g: &DiGraph, w: WCutWeights) -> Result<Vec<f64>> {
        let n = g.n_nodes();
        Ok(match w {
            WCutWeights::Stationary => {
                pagerank(
                    g.adjacency(),
                    &PageRankOptions {
                        teleport: self.options.teleport,
                        ..Default::default()
                    },
                )?
                .pi
            }
            WCutWeights::Degree => {
                let out = g.weighted_out_degrees();
                let inn = g.weighted_in_degrees();
                out.iter().zip(&inn).map(|(o, i)| o + i).collect()
            }
            WCutWeights::Uniform => vec![1.0; n],
        })
    }

    /// Clusters a directed graph. This is the paper's comparison baseline —
    /// note the input is the *directed* graph, not a symmetrized one.
    pub fn cluster_digraph(&self, g: &DiGraph) -> Result<Clustering> {
        let k = self.options.k;
        let n = g.n_nodes();
        if k == 0 {
            return Err(ClusterError::InvalidConfig("k must be positive".into()));
        }
        if self.options.candidates.is_empty() {
            return Err(ClusterError::InvalidConfig(
                "need at least one weight candidate".into(),
            ));
        }
        if n == 0 {
            return Ok(Clustering::single_cluster(0));
        }
        if k >= n {
            return Ok(Clustering::singletons(n));
        }
        let mut best: Option<(Clustering, f64)> = None;
        for &cand in &self.options.candidates {
            let t = self.weight_vector(g, cand)?;
            let l = wcut_laplacian(g, &t);
            let eig = lanczos_smallest(&l, k, &self.options.lanczos)?;
            // Scale eigenvectors by Θ^{-1/2} (undo the symmetrizing change
            // of basis), then cluster rows.
            let t_inv_sqrt: Vec<f64> = t
                .iter()
                .map(|&x| if x > 0.0 { 1.0 / x.sqrt() } else { 0.0 })
                .collect();
            let scaled: Vec<Vec<f64>> = eig
                .eigenvectors
                .iter()
                .map(|v| v.iter().zip(&t_inv_sqrt).map(|(x, s)| x * s).collect())
                .collect();
            let kmeans_opts = KMeansOptions {
                k,
                ..self.options.kmeans
            };
            let clustering = cluster_embedding(&scaled, n, &kmeans_opts)?;
            let score = directed_wcut(g, &t, clustering.assignments(), clustering.n_clusters());
            if best.as_ref().is_none_or(|(_, bs)| score < *bs) {
                best = Some((clustering, score));
            }
        }
        Ok(best.expect("at least one candidate").0)
    }
}

/// Builds the WCut Laplacian `I − (Θ^{1/2}PΘ^{-1/2} + Θ^{-1/2}PᵀΘ^{1/2})/2`.
pub fn wcut_laplacian(g: &DiGraph, t: &[f64]) -> CsrMatrix {
    let p = ops::row_normalize(g.adjacency());
    let sqrt_t: Vec<f64> = t.iter().map(|&x| x.max(0.0).sqrt()).collect();
    let inv_sqrt_t: Vec<f64> = sqrt_t
        .iter()
        .map(|&x| if x > 0.0 { 1.0 / x } else { 0.0 })
        .collect();
    // M = Θ^{1/2} P Θ^{-1/2}
    let mut m = p;
    ops::scale_rows(&mut m, &sqrt_t).expect("length matches");
    ops::scale_cols(&mut m, &inv_sqrt_t).expect("length matches");
    let mt = ops::transpose(&m);
    let sym = ops::add_scaled(&m, 0.5, &mt, 0.5).expect("same shape");
    let eye = CsrMatrix::identity(g.n_nodes());
    ops::add_scaled(&eye, 1.0, &sym, -1.0).expect("same shape")
}

/// Evaluates the directed weighted cut of a clustering (Eq. 4 summed over
/// clusters, with `T'(i) = T(i)/outdeg(i)` so that `T = π` recovers the
/// directed normalized cut of Eq. 3).
pub fn directed_wcut(g: &DiGraph, t: &[f64], assignment: &[u32], k: usize) -> f64 {
    let out_deg = g.weighted_out_degrees();
    let mut cluster_t = vec![0.0f64; k];
    for (v, &a) in assignment.iter().enumerate() {
        cluster_t[a as usize] += t[v];
    }
    // Cross-cluster flow in both directions per cluster.
    let mut boundary = vec![0.0f64; k];
    for (u, v, w) in g.edges() {
        let (cu, cv) = (assignment[u] as usize, assignment[v as usize] as usize);
        if cu != cv {
            let flow = if out_deg[u] > 0.0 {
                t[u] * w / out_deg[u]
            } else {
                0.0
            };
            boundary[cu] += flow; // leaves cu
            boundary[cv] += flow; // enters cv
        }
    }
    (0..k)
        .filter(|&c| cluster_t[c] > 0.0)
        .map(|c| boundary[c] / cluster_t[c])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::two_cliques;

    #[test]
    fn wcut_laplacian_is_symmetric_psd_like() {
        let g = two_cliques(4);
        let t = vec![1.0; 8];
        let l = wcut_laplacian(&g, &t);
        assert!(l.is_symmetric(1e-12));
        // Diagonal of I - sym(P) is 1 (no self-loops in P).
        for i in 0..8 {
            assert!((l.get(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques(6);
        let c = BestWCut::with_k(2).cluster_digraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 2);
        for i in 0..6 {
            assert!(c.same_cluster(0, i));
            assert!(c.same_cluster(6, 6 + i));
        }
        assert!(!c.same_cluster(0, 6));
    }

    #[test]
    fn directed_wcut_prefers_good_cuts() {
        let g = two_cliques(5);
        let t = vec![1.0; 10];
        let good: Vec<u32> = (0..10).map(|i| u32::from(i >= 5)).collect();
        let bad: Vec<u32> = (0..10).map(|i| (i % 2) as u32).collect();
        let wg = directed_wcut(&g, &t, &good, 2);
        let wb = directed_wcut(&g, &t, &bad, 2);
        assert!(wg < wb, "good {wg} >= bad {wb}");
    }

    #[test]
    fn directed_wcut_zero_for_single_cluster() {
        let g = two_cliques(3);
        let t = vec![1.0; 6];
        assert_eq!(directed_wcut(&g, &t, &[0; 6], 1), 0.0);
    }

    #[test]
    fn stationary_weights_recover_ncut_dir_form() {
        // For a directed cycle, π is uniform and every edge crosses in a
        // 2-coloring; WCut with stationary weights must be positive and
        // symmetric across the two clusters.
        let g = symclust_graph::generators::cycle_graph(6);
        let bw = BestWCut::with_k(2);
        let t = bw.weight_vector(&g, WCutWeights::Stationary).unwrap();
        assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        let assignment: Vec<u32> = (0..6).map(|i| (i % 2) as u32).collect();
        let w = directed_wcut(&g, &t, &assignment, 2);
        assert!(w > 0.0);
    }

    #[test]
    fn candidate_labels() {
        assert_eq!(WCutWeights::Stationary.label(), "stationary");
        assert_eq!(WCutWeights::Degree.label(), "degree");
        assert_eq!(WCutWeights::Uniform.label(), "uniform");
    }

    #[test]
    fn edge_cases() {
        let g = two_cliques(3);
        assert!(BestWCut::with_k(0).cluster_digraph(&g).is_err());
        let mut b = BestWCut::with_k(2);
        b.options.candidates.clear();
        assert!(b.cluster_digraph(&g).is_err());
        let big_k = BestWCut::with_k(100).cluster_digraph(&g).unwrap();
        assert_eq!(big_k.n_clusters(), 6);
    }

    #[test]
    fn single_candidate_works() {
        let g = two_cliques(4);
        let algo = BestWCut {
            options: BestWCutOptions {
                k: 2,
                candidates: vec![WCutWeights::Degree],
                ..Default::default()
            },
        };
        let c = algo.cluster_digraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 2);
    }
}

//! Normalized spectral clustering of undirected graphs.
//!
//! Shi–Malik style: compute the `k` smallest eigenvectors of the symmetric
//! normalized Laplacian `L = I − D^{-1/2} A D^{-1/2}` (via Lanczos),
//! row-normalize the spectral embedding, and run k-means++ on the rows.
//! Used standalone as a quality reference and as the spectral engine inside
//! [`crate::BestWCut`].

use crate::clustering::Clustering;
use crate::kmeans::{kmeans, KMeansOptions};
use crate::{ClusterAlgorithm, ClusterError, Result};
use symclust_graph::UnGraph;
use symclust_sparse::{lanczos_smallest, ops, CsrMatrix, LanczosOptions};

/// Options for [`SpectralClustering`].
#[derive(Debug, Clone, Copy)]
pub struct SpectralOptions {
    /// Number of clusters (and eigenvectors).
    pub k: usize,
    /// k-means settings for the embedding.
    pub kmeans: KMeansOptions,
    /// Lanczos settings.
    pub lanczos: LanczosOptions,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        SpectralOptions {
            k: 8,
            kmeans: KMeansOptions::default(),
            lanczos: LanczosOptions::default(),
        }
    }
}

/// Shi–Malik normalized spectral clustering.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectralClustering {
    /// Execution options.
    pub options: SpectralOptions,
}

impl SpectralClustering {
    /// Creates a spectral clusterer for `k` clusters.
    pub fn with_k(k: usize) -> Self {
        SpectralClustering {
            options: SpectralOptions {
                k,
                ..Default::default()
            },
        }
    }
}

/// Builds the symmetric normalized Laplacian `I − D^{-1/2} A D^{-1/2}`.
/// Zero-degree nodes get an identity row (eigenvalue 1, isolated in the
/// embedding).
pub fn normalized_laplacian(g: &UnGraph) -> CsrMatrix {
    let a = g.adjacency();
    let degrees = g.weighted_degrees();
    let inv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut norm = a.clone();
    ops::scale_rows(&mut norm, &inv_sqrt).expect("degree length matches");
    ops::scale_cols(&mut norm, &inv_sqrt).expect("degree length matches");
    let eye = CsrMatrix::identity(a.n_rows());
    ops::add_scaled(&eye, 1.0, &norm, -1.0).expect("same shape")
}

/// Clusters rows of a spectral embedding (n × k, row-major after
/// row-normalization) with k-means++.
pub fn cluster_embedding(
    eigenvectors: &[Vec<f64>],
    n: usize,
    kmeans_opts: &KMeansOptions,
) -> Result<Clustering> {
    let d = eigenvectors.len();
    let mut points = vec![0.0f64; n * d];
    for (j, vec) in eigenvectors.iter().enumerate() {
        for i in 0..n {
            points[i * d + j] = vec[i];
        }
    }
    // Row-normalize (standard for normalized spectral clustering).
    for i in 0..n {
        let row = &mut points[i * d..(i + 1) * d];
        let norm: f64 = row.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
    }
    let result = kmeans(&points, n, d, kmeans_opts)?;
    Ok(Clustering::from_assignments(&result.assignments))
}

impl ClusterAlgorithm for SpectralClustering {
    fn name(&self) -> String {
        "Spectral".to_string()
    }

    fn cluster_ungraph(&self, g: &UnGraph) -> Result<Clustering> {
        let k = self.options.k;
        let n = g.n_nodes();
        if k == 0 {
            return Err(ClusterError::InvalidConfig("k must be positive".into()));
        }
        if n == 0 {
            return Ok(Clustering::single_cluster(0));
        }
        if k >= n {
            return Ok(Clustering::singletons(n));
        }
        let l = normalized_laplacian(g);
        let eig = lanczos_smallest(&l, k, &self.options.lanczos)?;
        let kmeans_opts = KMeansOptions {
            k,
            ..self.options.kmeans
        };
        cluster_embedding(&eig.eigenvectors, n, &kmeans_opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques_un(k: usize) -> UnGraph {
        let mut edges = Vec::new();
        for base in [0, k] {
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((k - 1, k));
        UnGraph::from_edges(2 * k, &edges).unwrap()
    }

    #[test]
    fn laplacian_psd_and_null_vector() {
        let g = two_cliques_un(4);
        let l = normalized_laplacian(&g);
        assert!(l.is_symmetric(1e-12));
        // L · D^{1/2}·1 = 0 for connected graphs.
        let d_sqrt: Vec<f64> = g.weighted_degrees().iter().map(|d| d.sqrt()).collect();
        let y = l.mul_vec(&d_sqrt).unwrap();
        for v in y {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn laplacian_handles_isolated_nodes() {
        let g = UnGraph::from_edges(3, &[(0, 1)]).unwrap();
        let l = normalized_laplacian(&g);
        assert_eq!(l.get(2, 2), 1.0);
        assert_eq!(l.get(2, 0), 0.0);
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques_un(6);
        let c = SpectralClustering::with_k(2).cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 2);
        for i in 0..6 {
            assert!(c.same_cluster(0, i), "node {i} strayed");
            assert!(c.same_cluster(6, 6 + i), "node {} strayed", 6 + i);
        }
        assert!(!c.same_cluster(0, 6));
    }

    #[test]
    fn finds_four_cliques() {
        let mut edges = Vec::new();
        for c in 0..4 {
            let base = c * 5;
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
            edges.push((base + 4, (base + 5) % 20));
        }
        let g = UnGraph::from_edges(20, &edges).unwrap();
        let c = SpectralClustering::with_k(4).cluster_ungraph(&g).unwrap();
        assert_eq!(c.n_clusters(), 4);
        let mut intact = 0;
        for clique in 0..4 {
            let first = c.cluster_of(clique * 5);
            if (0..5).all(|i| c.cluster_of(clique * 5 + i) == first) {
                intact += 1;
            }
        }
        assert!(intact >= 3, "{intact}/4 cliques intact");
    }

    #[test]
    fn edge_cases() {
        let g = two_cliques_un(3);
        assert!(SpectralClustering::with_k(0).cluster_ungraph(&g).is_err());
        assert_eq!(
            SpectralClustering::with_k(100)
                .cluster_ungraph(&g)
                .unwrap()
                .n_clusters(),
            6
        );
        let empty = UnGraph::from_edges(0, &[]).unwrap();
        assert_eq!(
            SpectralClustering::with_k(2)
                .cluster_ungraph(&empty)
                .unwrap()
                .n_nodes(),
            0
        );
    }

    #[test]
    fn cluster_embedding_separates_obvious_blocks() {
        // Two eigenvector columns that cleanly separate nodes 0-2 from 3-5.
        let v1 = vec![1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        let v2 = vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        let c = cluster_embedding(
            &[v2, v1],
            6,
            &KMeansOptions {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(c.same_cluster(0, 1) && c.same_cluster(1, 2));
        assert!(c.same_cluster(3, 4) && c.same_cluster(4, 5));
        assert!(!c.same_cluster(0, 3));
    }
}

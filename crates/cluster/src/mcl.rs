//! Regularized Markov Clustering (R-MCL).
//!
//! The flow-simulation core of MLR-MCL (Satuluri & Parthasarathy, KDD 2009).
//! Classic MCL alternates *expansion* (`M := M·M`) and *inflation*
//! (element-wise power then renormalization); R-MCL replaces self-expansion
//! with multiplication by the fixed canonical transition matrix `M_G`
//! (`M := M·M_G` in the row-stochastic convention used here), which
//! regularizes flows toward the graph topology and avoids MCL's tendency to
//! produce massive attractor imbalance.
//!
//! Rows of `M` are kept sparse by per-row pruning (drop entries below a
//! fraction of the row maximum, keep at most `max_row_nnz`), the standard
//! MCL scalability device.

use crate::clustering::Clustering;
use crate::{ClusterError, Result};
use symclust_graph::stats::UnionFind;
use symclust_graph::UnGraph;
use symclust_obs::MetricsRegistry;
use symclust_sparse::{ops, CsrMatrix};

/// Stable metric names recorded by the R-MCL iteration (DESIGN.md §11).
pub mod metric_names {
    /// R-MCL iteration loops completed (one per flow run, across levels).
    pub const RUNS: &str = "mcl.runs";
    /// Total expand–inflate–prune iterations performed.
    pub const ITERATIONS: &str = "mcl.iterations";
    /// Runs whose assignment stabilized within the iteration budget.
    pub const CONVERGED_RUNS: &str = "mcl.converged_runs";
    /// Runs that exhausted the budget without stabilizing.
    pub const NONCONVERGED_RUNS: &str = "mcl.nonconverged_runs";
    /// Gauge: fraction of nodes whose cluster assignment changed in the
    /// last iteration of the most recent run (0 at convergence).
    pub const FINAL_RESIDUAL: &str = "mcl.final_residual";
}

/// Options for [`rmcl`].
#[derive(Debug, Clone, Copy)]
pub struct MclOptions {
    /// Inflation exponent `r > 1`. Higher inflation yields more, smaller
    /// clusters; this is how MLR-MCL's output granularity is (indirectly)
    /// controlled, as the paper notes in §4.2.
    pub inflation: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Per-row relative prune threshold: entries below
    /// `prune_threshold * row_max` are dropped after inflation.
    pub prune_threshold: f64,
    /// Keep at most this many entries per row after pruning.
    pub max_row_nnz: usize,
    /// Cap on the canonical flow matrix's row width: hub rows of `M_G` are
    /// truncated to their `max_graph_row_nnz` heaviest entries (then
    /// renormalized). Hub rows spread vanishing flow everywhere — it is
    /// pruned right after inflation anyway — but each expansion pays for
    /// the full fan-out; capping bounds the per-iteration cost at
    /// `n · max_row_nnz · max_graph_row_nnz`.
    pub max_graph_row_nnz: usize,
    /// Declare convergence after the cluster assignment is stable for this
    /// many consecutive iterations.
    pub stable_iterations: usize,
}

impl Default for MclOptions {
    fn default() -> Self {
        MclOptions {
            inflation: 2.0,
            max_iter: 40,
            prune_threshold: 1e-3,
            max_row_nnz: 64,
            max_graph_row_nnz: 512,
            stable_iterations: 2,
        }
    }
}

/// Outcome of an R-MCL run.
#[derive(Debug, Clone)]
pub struct MclResult {
    /// The extracted hard clustering.
    pub clustering: Clustering,
    /// The converged flow matrix (row-stochastic).
    pub flow: CsrMatrix,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the assignment stabilized within the budget.
    pub converged: bool,
}

/// Builds the canonical flow matrix `M_G`: adjacency plus self-loops
/// (weight = the node's maximum incident edge weight, so self-flow is
/// comparable to the strongest neighbor flow), row-normalized. Rows wider
/// than `max_graph_row_nnz` are truncated to their heaviest entries before
/// normalization (see [`MclOptions::max_graph_row_nnz`]); self-loops carry
/// the row maximum so they always survive truncation.
pub fn canonical_flow_capped(g: &UnGraph, max_graph_row_nnz: usize) -> CsrMatrix {
    let a = g.adjacency();
    let n = a.n_rows();
    let mut loop_weights = CsrMatrix::identity(n);
    {
        let values = loop_weights.values_mut();
        for (row, v) in values.iter_mut().enumerate() {
            let row_max = a.row_values(row).iter().cloned().fold(0.0f64, f64::max);
            *v = if row_max > 0.0 { row_max } else { 1.0 };
        }
    }
    let mut with_loops =
        ops::add(&ops::drop_diagonal(a), &loop_weights).expect("same-shape add cannot fail");
    if max_graph_row_nnz > 0 {
        with_loops = ops::top_k_per_row(&with_loops, max_graph_row_nnz);
    }
    ops::row_normalize(&with_loops)
}

/// [`canonical_flow_capped`] with the default row cap.
pub fn canonical_flow(g: &UnGraph) -> CsrMatrix {
    canonical_flow_capped(g, MclOptions::default().max_graph_row_nnz)
}

/// Applies inflation (element-wise power `r`), per-row pruning and
/// renormalization to a row-stochastic matrix.
pub fn inflate_and_prune(m: &CsrMatrix, opts: &MclOptions) -> CsrMatrix {
    let n = m.n_rows();
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    for row in 0..n {
        scratch.clear();
        let mut row_max = 0.0f64;
        for (c, v) in m.row_iter(row) {
            let p = v.powf(opts.inflation);
            if p > row_max {
                row_max = p;
            }
            scratch.push((c, p));
        }
        let cutoff = row_max * opts.prune_threshold;
        scratch.retain(|&(_, v)| v >= cutoff && v > 0.0);
        if scratch.len() > opts.max_row_nnz {
            scratch.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
            scratch.truncate(opts.max_row_nnz);
            scratch.sort_unstable_by_key(|&(c, _)| c);
        }
        let sum: f64 = scratch.iter().map(|&(_, v)| v).sum();
        if sum > 0.0 {
            for &(c, v) in &scratch {
                indices.push(c);
                values.push(v / sum);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_parts_unchecked(n, m.n_cols(), indptr, indices, values)
}

/// Orphan-repair level: a self-attracted node that attracts nobody else
/// joins its strongest other target if that flow is at least this fraction
/// of its self-flow.
pub const ORPHAN_REATTACH_THRESHOLD: f64 = 0.5;

/// Fused expansion + inflation + pruning: computes one R-MCL iteration
/// `M' = inflate_and_prune(M · M_G)` without materializing the expanded
/// matrix. The expanded row (potentially `max_row_nnz × avg_degree` wide)
/// goes straight from the Gustavson accumulator through inflation and
/// top-`max_row_nnz` selection, skipping the column sort of the wide
/// intermediate — the dominant cost of the naive two-step pipeline.
pub fn expand_inflate_prune(m: &CsrMatrix, m_g: &CsrMatrix, opts: &MclOptions) -> CsrMatrix {
    let n = m.n_rows();
    let n_cols = m_g.n_cols();
    let mut acc = vec![0.0f64; n_cols];
    let mut touched: Vec<u32> = Vec::new();
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for row in 0..n {
        // Expand: acc = Σ_k M(row, k) · M_G(k, ·).
        for (k, mv) in m.row_iter(row) {
            for (j, gv) in m_g.row_iter(k as usize) {
                let slot = &mut acc[j as usize];
                if *slot == 0.0 {
                    touched.push(j);
                }
                *slot += mv * gv;
            }
        }
        // Inflate + threshold against the inflated row maximum.
        scratch.clear();
        let mut row_max = 0.0f64;
        for &j in &touched {
            let v = acc[j as usize];
            acc[j as usize] = 0.0;
            if v > 0.0 {
                let p = v.powf(opts.inflation);
                if p > row_max {
                    row_max = p;
                }
                scratch.push((j, p));
            }
        }
        touched.clear();
        let cutoff = row_max * opts.prune_threshold;
        scratch.retain(|&(_, v)| v >= cutoff && v > 0.0);
        if scratch.len() > opts.max_row_nnz {
            // Partial selection of the top entries, then sort only those.
            let k = opts.max_row_nnz;
            scratch.select_nth_unstable_by(k - 1, |a, b| b.1.total_cmp(&a.1));
            scratch.truncate(k);
        }
        scratch.sort_unstable_by_key(|&(c, _)| c);
        let sum: f64 = scratch.iter().map(|&(_, v)| v).sum();
        if sum > 0.0 {
            for &(c, v) in &scratch {
                indices.push(c);
                values.push(v / sum);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_parts_unchecked(n, n_cols, indptr, indices, values)
}

/// Row-parallel variant of [`expand_inflate_prune`]: output rows are split
/// One worker's share of the parallel flow matrix: `(indptr deltas,
/// indices, values)` for its contiguous row chunk.
type FlowChunk = (Vec<usize>, Vec<u32>, Vec<f64>);

/// into contiguous chunks processed by crossbeam scoped threads, each with
/// its own accumulator. Falls back to the serial kernel for small inputs or
/// single-thread environments. Produces the same output as the serial
/// kernel (each row's computation is independent).
pub fn expand_inflate_prune_parallel(
    m: &CsrMatrix,
    m_g: &CsrMatrix,
    opts: &MclOptions,
    n_threads: usize,
) -> CsrMatrix {
    let n = m.n_rows();
    let n_threads = if n_threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        n_threads
    };
    if n_threads <= 1 || n < 4 * n_threads {
        return expand_inflate_prune(m, m_g, opts);
    }
    let chunk = n.div_ceil(n_threads);
    let mut results: Vec<Option<FlowChunk>> = (0..n_threads).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let opts = *opts;
            handles.push((
                t,
                scope.spawn(move |_| {
                    let n_cols = m_g.n_cols();
                    let mut acc = vec![0.0f64; n_cols];
                    let mut touched: Vec<u32> = Vec::new();
                    let mut scratch: Vec<(u32, f64)> = Vec::new();
                    let mut row_lens = Vec::with_capacity(hi - lo);
                    let mut indices: Vec<u32> = Vec::new();
                    let mut values: Vec<f64> = Vec::new();
                    for row in lo..hi {
                        let before = indices.len();
                        for (k, mv) in m.row_iter(row) {
                            for (j, gv) in m_g.row_iter(k as usize) {
                                let slot = &mut acc[j as usize];
                                if *slot == 0.0 {
                                    touched.push(j);
                                }
                                *slot += mv * gv;
                            }
                        }
                        scratch.clear();
                        let mut row_max = 0.0f64;
                        for &j in &touched {
                            let v = acc[j as usize];
                            acc[j as usize] = 0.0;
                            if v > 0.0 {
                                let p = v.powf(opts.inflation);
                                if p > row_max {
                                    row_max = p;
                                }
                                scratch.push((j, p));
                            }
                        }
                        touched.clear();
                        let cutoff = row_max * opts.prune_threshold;
                        scratch.retain(|&(_, v)| v >= cutoff && v > 0.0);
                        if scratch.len() > opts.max_row_nnz {
                            let k = opts.max_row_nnz;
                            scratch.select_nth_unstable_by(k - 1, |a, b| b.1.total_cmp(&a.1));
                            scratch.truncate(k);
                        }
                        scratch.sort_unstable_by_key(|&(c, _)| c);
                        let sum: f64 = scratch.iter().map(|&(_, v)| v).sum();
                        if sum > 0.0 {
                            for &(c, v) in &scratch {
                                indices.push(c);
                                values.push(v / sum);
                            }
                        }
                        row_lens.push(indices.len() - before);
                    }
                    (row_lens, indices, values)
                }),
            ));
        }
        for (t, handle) in handles {
            results[t] = Some(handle.join().expect("mcl worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for (row_lens, idx, vals) in results.into_iter().flatten() {
        for len in row_lens {
            indptr.push(indptr.last().unwrap() + len);
        }
        indices.extend_from_slice(&idx);
        values.extend_from_slice(&vals);
    }
    CsrMatrix::from_raw_parts_unchecked(n, m_g.n_cols(), indptr, indices, values)
}

/// Extracts a hard clustering from a flow matrix.
///
/// Each node attaches to its highest-flow column (its *attractor*), and
/// attraction chains merge via union–find — the standard R-MCL reading.
/// One subtlety: R-MCL's regularization keeps a persistent trickle of flow
/// across cluster boundaries (the fixed operator `M_G` re-injects bridge
/// edges every iteration), and for symmetric clique-like clusters the flow
/// equilibrium is a *uniform block* whose argmax is decided by noise. A
/// boundary node can then be self-attracted while nothing else attracts it,
/// stranding it as a spurious singleton. The repair pass reattaches such
/// orphans to their strongest non-self target when that flow is comparable
/// ([`ORPHAN_REATTACH_THRESHOLD`]) to the self-flow.
pub fn extract_clusters(flow: &CsrMatrix) -> Clustering {
    let n = flow.n_rows();
    let mut attractor: Vec<u32> = (0..n as u32).collect();
    let mut best_other: Vec<Option<(u32, f64)>> = vec![None; n];
    let mut self_flow = vec![0.0f64; n];
    for row in 0..n {
        let mut best: Option<(u32, f64)> = None;
        for (c, v) in flow.row_iter(row) {
            if c as usize == row {
                self_flow[row] = v;
            } else if best_other[row].is_none_or(|(_, bv)| v > bv) {
                best_other[row] = Some((c, v));
            }
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((c, v));
            }
        }
        if let Some((a, _)) = best {
            attractor[row] = a;
        }
    }
    // Count incoming attractions to detect orphans.
    let mut attracted = vec![false; n];
    for (row, &a) in attractor.iter().enumerate() {
        if a as usize != row {
            attracted[a as usize] = true;
        }
    }
    let mut uf = UnionFind::new(n);
    for row in 0..n {
        let mut target = attractor[row] as usize;
        if target == row && !attracted[row] {
            if let Some((other, v)) = best_other[row] {
                if v >= ORPHAN_REATTACH_THRESHOLD * self_flow[row] {
                    target = other as usize;
                }
            }
        }
        uf.union(row, target);
    }
    let (labels, _) = uf.into_component_labels();
    Clustering::from_assignments(&labels)
}

/// Runs the R-MCL iteration `M := inflate(M · M_G)` starting from `m0`.
/// Returns the final flow, iterations used and whether it converged.
pub fn rmcl_iterate(
    m_g: &CsrMatrix,
    m0: CsrMatrix,
    opts: &MclOptions,
    max_iter: usize,
) -> Result<(CsrMatrix, usize, bool)> {
    rmcl_iterate_with(m_g, m0, opts, max_iter, None, None)
}

/// [`rmcl_iterate`] that polls `token` before every expand-inflate-prune
/// step, so a runaway flow computation stops within one iteration of the
/// token tripping.
pub fn rmcl_iterate_cancellable(
    m_g: &CsrMatrix,
    m0: CsrMatrix,
    opts: &MclOptions,
    max_iter: usize,
    token: &symclust_sparse::CancelToken,
) -> Result<(CsrMatrix, usize, bool)> {
    rmcl_iterate_with(m_g, m0, opts, max_iter, Some(token), None)
}

pub(crate) fn rmcl_iterate_with(
    m_g: &CsrMatrix,
    m0: CsrMatrix,
    opts: &MclOptions,
    max_iter: usize,
    token: Option<&symclust_sparse::CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<(CsrMatrix, usize, bool)> {
    let mut m = m0;
    let mut prev_assignment: Option<Vec<u32>> = None;
    let mut stable = 0usize;
    let mut iterations = 0usize;
    // Convergence residual: fraction of nodes whose assignment changed in
    // the latest iteration (1.0 before the first comparison is possible).
    let mut residual = 1.0f64;
    let mut converged = false;
    for iter in 1..=max_iter {
        if let Some(t) = token {
            t.checkpoint()?;
        }
        iterations = iter;
        m = expand_inflate_prune(&m, m_g, opts);
        let assignment = extract_clusters(&m).assignments().to_vec();
        let changed = match prev_assignment.as_deref() {
            Some(prev) => prev.iter().zip(&assignment).filter(|(a, b)| a != b).count(),
            None => assignment.len(),
        };
        residual = changed as f64 / assignment.len().max(1) as f64;
        if changed == 0 && prev_assignment.is_some() {
            stable += 1;
            if stable >= opts.stable_iterations {
                converged = true;
                break;
            }
        } else {
            stable = 0;
        }
        prev_assignment = Some(assignment);
    }
    if let Some(metrics) = metrics {
        metrics.counter(metric_names::RUNS).inc();
        metrics
            .counter(metric_names::ITERATIONS)
            .add(iterations as u64);
        if converged {
            metrics.counter(metric_names::CONVERGED_RUNS).inc();
        } else {
            metrics.counter(metric_names::NONCONVERGED_RUNS).inc();
        }
        metrics.gauge(metric_names::FINAL_RESIDUAL).set(residual);
    }
    Ok((m, iterations, converged))
}

/// Runs single-level R-MCL on an undirected graph.
pub fn rmcl(g: &UnGraph, opts: &MclOptions) -> Result<MclResult> {
    if opts.inflation <= 1.0 {
        return Err(ClusterError::InvalidConfig(format!(
            "inflation must exceed 1.0, got {}",
            opts.inflation
        )));
    }
    let m_g = canonical_flow_capped(g, opts.max_graph_row_nnz);
    let (flow, iterations, converged) = rmcl_iterate(&m_g, m_g.clone(), opts, opts.max_iter)?;
    let clustering = extract_clusters(&flow).with_converged(converged);
    Ok(MclResult {
        clustering,
        flow,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques_un(k: usize) -> UnGraph {
        let mut edges = Vec::new();
        for base in [0, k] {
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((k - 1, k)); // bridge
        UnGraph::from_edges(2 * k, &edges).unwrap()
    }

    #[test]
    fn canonical_flow_is_row_stochastic_with_loops() {
        let g = two_cliques_un(3);
        let m = canonical_flow(&g);
        for row in 0..m.n_rows() {
            let sum: f64 = m.row_values(row).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(m.get(row, row) > 0.0, "missing self-loop on {row}");
        }
    }

    #[test]
    fn canonical_flow_isolated_node_self_loops() {
        let g = UnGraph::from_edges(3, &[(0, 1)]).unwrap();
        let m = canonical_flow(&g);
        assert_eq!(m.get(2, 2), 1.0);
    }

    #[test]
    fn inflation_sharpens_rows() {
        let m = CsrMatrix::from_dense(&[vec![0.8, 0.2], vec![0.5, 0.5]]);
        let opts = MclOptions {
            inflation: 2.0,
            prune_threshold: 0.0,
            ..Default::default()
        };
        let i = inflate_and_prune(&m, &opts);
        // 0.8² / (0.8² + 0.2²) ≈ 0.941
        assert!((i.get(0, 0) - 0.64 / 0.68).abs() < 1e-12);
        assert!((i.get(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pruning_caps_row_width() {
        let m = CsrMatrix::from_dense(&[vec![0.4, 0.3, 0.2, 0.1]]);
        let opts = MclOptions {
            max_row_nnz: 2,
            prune_threshold: 0.0,
            inflation: 1.5,
            ..Default::default()
        };
        let p = inflate_and_prune(&m, &opts);
        assert_eq!(p.row_nnz(0), 2);
        let sum: f64 = p.row_values(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // The two largest entries survive.
        assert!(p.get(0, 0) > 0.0 && p.get(0, 1) > 0.0);
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques_un(5);
        let r = rmcl(&g, &MclOptions::default()).unwrap();
        assert!(r.converged, "did not converge in {} iters", r.iterations);
        assert_eq!(r.clustering.n_clusters(), 2);
        for i in 0..5 {
            assert!(r.clustering.same_cluster(0, i));
            assert!(r.clustering.same_cluster(5, 5 + i));
        }
        assert!(!r.clustering.same_cluster(0, 5));
    }

    #[test]
    fn flow_rows_remain_stochastic() {
        let g = two_cliques_un(4);
        let r = rmcl(&g, &MclOptions::default()).unwrap();
        for row in 0..r.flow.n_rows() {
            let sum: f64 = r.flow.row_values(row).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {row} sums to {sum}");
        }
    }

    #[test]
    fn higher_inflation_gives_more_clusters() {
        // A ring of 4 small cliques lightly connected.
        let mut edges = Vec::new();
        let k = 4;
        for c in 0..4 {
            let base = c * k;
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push((base + i, base + j));
                }
            }
            edges.push((base + k - 1, (base + k) % (4 * k)));
        }
        let g = UnGraph::from_edges(4 * k, &edges).unwrap();
        let low = rmcl(
            &g,
            &MclOptions {
                inflation: 1.2,
                ..Default::default()
            },
        )
        .unwrap();
        let high = rmcl(
            &g,
            &MclOptions {
                inflation: 3.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            high.clustering.n_clusters() >= low.clustering.n_clusters(),
            "high inflation {} clusters < low inflation {}",
            high.clustering.n_clusters(),
            low.clustering.n_clusters()
        );
        assert_eq!(high.clustering.n_clusters(), 4);
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let g = UnGraph::from_edges(4, &[(0, 1)]).unwrap();
        let r = rmcl(&g, &MclOptions::default()).unwrap();
        assert_eq!(r.clustering.n_clusters(), 3);
        assert!(r.clustering.same_cluster(0, 1));
        assert!(!r.clustering.same_cluster(2, 3));
    }

    #[test]
    fn rejects_bad_inflation() {
        let g = UnGraph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(rmcl(
            &g,
            &MclOptions {
                inflation: 1.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn parallel_kernel_matches_serial() {
        let g = two_cliques_un(8); // 16 nodes > 4*3 threads
        let m_g = canonical_flow(&g);
        let opts = MclOptions::default();
        let serial = expand_inflate_prune(&m_g, &m_g, &opts);
        let parallel = expand_inflate_prune_parallel(&m_g, &m_g, &opts, 3);
        assert_eq!(serial.indptr(), parallel.indptr());
        assert_eq!(serial.indices(), parallel.indices());
        for (a, b) in serial.values().iter().zip(parallel.values()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn parallel_kernel_small_input_falls_back() {
        let g = two_cliques_un(3);
        let m_g = canonical_flow(&g);
        let opts = MclOptions::default();
        let serial = expand_inflate_prune(&m_g, &m_g, &opts);
        let parallel = expand_inflate_prune_parallel(&m_g, &m_g, &opts, 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn extract_clusters_follows_attractors() {
        // Row 0 flows to 1, row 1 to 1, row 2 to 2: clusters {0,1}, {2}.
        let m = CsrMatrix::from_dense(&[
            vec![0.2, 0.8, 0.0],
            vec![0.1, 0.9, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let c = extract_clusters(&m);
        assert_eq!(c.n_clusters(), 2);
        assert!(c.same_cluster(0, 1));
        assert!(!c.same_cluster(0, 2));
    }
}

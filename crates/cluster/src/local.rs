//! Local partitioning via PageRank-Nibble.
//!
//! The paper (§2.1.1) singles out Andersen, Chung & Lang's local
//! partitioning \[1\] as the one scalable algorithm in the directed
//! normalized-cut line of work. This module implements the undirected
//! PageRank-Nibble primitive — approximate personalized PageRank by the
//! *push* algorithm followed by a sweep cut — and a directed front-end that
//! routes through the Random-walk symmetrization, which by Gleich's
//! identity preserves directed normalized cuts (§3.2).
//!
//! Use it to extract one community around a seed node without touching the
//! rest of the graph: cost is proportional to the output cluster's volume,
//! not the graph size.

use crate::{ClusterError, Result};
use std::collections::VecDeque;
use symclust_core::{RandomWalk, Symmetrizer};
use symclust_graph::{DiGraph, UnGraph};

/// Options for [`pagerank_nibble`].
#[derive(Debug, Clone, Copy)]
pub struct NibbleOptions {
    /// Teleport probability of the personalized walk (ACL's α).
    pub alpha: f64,
    /// Push tolerance: stop when every residual satisfies
    /// `r(u) < epsilon · deg(u)`. Smaller ⇒ larger support, better cuts.
    pub epsilon: f64,
    /// Upper bound on returned cluster size (0 = unbounded).
    pub max_cluster_size: usize,
}

impl Default for NibbleOptions {
    fn default() -> Self {
        NibbleOptions {
            alpha: 0.15,
            epsilon: 1e-5,
            max_cluster_size: 0,
        }
    }
}

/// A local cluster found around a seed node.
#[derive(Debug, Clone)]
pub struct LocalCluster {
    /// Member nodes, sorted ascending.
    pub members: Vec<u32>,
    /// Conductance of the cut: `cut(S) / min(vol(S), vol(V∖S))`.
    pub conductance: f64,
    /// Number of push operations performed (work measure).
    pub pushes: usize,
}

/// Approximate personalized PageRank by the ACL push algorithm. Returns the
/// dense approximation vector `p` (most entries zero) and the push count.
pub fn approximate_ppr(
    g: &UnGraph,
    seed: usize,
    alpha: f64,
    epsilon: f64,
) -> Result<(Vec<f64>, usize)> {
    let n = g.n_nodes();
    if seed >= n {
        return Err(ClusterError::InvalidConfig(format!(
            "seed {seed} out of range for {n} nodes"
        )));
    }
    if !(0.0..1.0).contains(&alpha) || alpha == 0.0 {
        return Err(ClusterError::InvalidConfig(format!(
            "alpha {alpha} outside (0, 1)"
        )));
    }
    if epsilon <= 0.0 {
        return Err(ClusterError::InvalidConfig(
            "epsilon must be positive".into(),
        ));
    }
    let degrees = g.weighted_degrees();
    // Scale-invariant residual threshold: the ACL condition r(u) < ε·d(u)
    // assumes unweighted degrees; for weighted graphs (e.g. the Random-walk
    // symmetrization, whose total volume is ~1) the degree is normalized by
    // the mean so ε keeps its usual meaning regardless of weight scale.
    let n_nonzero = degrees.iter().filter(|&&d| d > 0.0).count().max(1);
    let mean_degree = degrees.iter().sum::<f64>() / n_nonzero as f64;
    let norm = if mean_degree > 0.0 {
        1.0 / mean_degree
    } else {
        1.0
    };
    if degrees[seed] <= 0.0 {
        // Isolated seed: its own cluster, trivially.
        let mut p = vec![0.0; n];
        p[seed] = 1.0;
        return Ok((p, 0));
    }
    let mut p = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    r[seed] = 1.0;
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut queued = vec![false; n];
    queue.push_back(seed as u32);
    queued[seed] = true;
    let mut pushes = 0usize;
    // Hard work bound: the push algorithm touches O(1/(ε·α)) volume.
    let max_pushes = ((2.0 / (epsilon * alpha)) as usize).max(1000);
    while let Some(u) = queue.pop_front() {
        let u = u as usize;
        queued[u] = false;
        let du = degrees[u];
        if du <= 0.0 || r[u] < epsilon * du * norm {
            continue;
        }
        pushes += 1;
        if pushes > max_pushes {
            break;
        }
        let ru = r[u];
        p[u] += alpha * ru;
        r[u] = (1.0 - alpha) * ru / 2.0;
        if r[u] >= epsilon * du * norm && !queued[u] {
            queue.push_back(u as u32);
            queued[u] = true;
        }
        let spread = (1.0 - alpha) * ru / 2.0;
        for (v, w) in g.neighbors(u) {
            let v = v as usize;
            r[v] += spread * w / du;
            if degrees[v] > 0.0 && r[v] >= epsilon * degrees[v] * norm && !queued[v] {
                queue.push_back(v as u32);
                queued[v] = true;
            }
        }
    }
    Ok((p, pushes))
}

/// Conductance of a node set: `cut(S) / min(vol(S), vol(V∖S))`.
pub fn conductance(g: &UnGraph, members: &[u32]) -> f64 {
    let mut in_set = vec![false; g.n_nodes()];
    for &m in members {
        in_set[m as usize] = true;
    }
    let degrees = g.weighted_degrees();
    let total_vol: f64 = degrees.iter().sum();
    let vol: f64 = members.iter().map(|&m| degrees[m as usize]).sum();
    let mut cut = 0.0;
    for &m in members {
        for (v, w) in g.neighbors(m as usize) {
            if !in_set[v as usize] {
                cut += w;
            }
        }
    }
    let denom = vol.min(total_vol - vol);
    if denom <= 0.0 {
        if cut == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        cut / denom
    }
}

/// PageRank-Nibble: approximate PPR from `seed`, then sweep the nodes in
/// decreasing `p(u)/deg(u)` order and return the prefix with the lowest
/// conductance.
pub fn pagerank_nibble(g: &UnGraph, seed: usize, opts: &NibbleOptions) -> Result<LocalCluster> {
    let (p, pushes) = approximate_ppr(g, seed, opts.alpha, opts.epsilon)?;
    let degrees = g.weighted_degrees();
    let total_vol: f64 = degrees.iter().sum();
    // Candidate nodes with positive mass, ordered by degree-normalized PPR.
    let mut order: Vec<u32> = (0..g.n_nodes() as u32)
        .filter(|&u| p[u as usize] > 0.0)
        .collect();
    order.sort_unstable_by(|&a, &b| {
        let ra = p[a as usize] / degrees[a as usize].max(1e-300);
        let rb = p[b as usize] / degrees[b as usize].max(1e-300);
        rb.total_cmp(&ra)
    });
    if order.is_empty() {
        return Ok(LocalCluster {
            members: vec![seed as u32],
            conductance: 0.0,
            pushes,
        });
    }
    let limit = if opts.max_cluster_size == 0 {
        order.len()
    } else {
        opts.max_cluster_size.min(order.len())
    };
    // Incremental sweep: maintain cut and volume as nodes enter the set.
    let mut in_set = vec![false; g.n_nodes()];
    let mut vol = 0.0f64;
    let mut cut = 0.0f64;
    let mut best_phi = f64::INFINITY;
    let mut best_len = 1;
    for (i, &u) in order.iter().take(limit).enumerate() {
        let u = u as usize;
        vol += degrees[u];
        for (v, w) in g.neighbors(u) {
            if in_set[v as usize] {
                cut -= w;
            } else if v as usize != u {
                cut += w;
            }
        }
        in_set[u] = true;
        // Standard sweep restriction: only sets up to half the volume are
        // candidate communities (beyond that the "cluster" is really the
        // complement, and float cancellation can even drive cut negative).
        if vol > total_vol / 2.0 {
            break;
        }
        let denom = vol.min(total_vol - vol);
        if denom > 0.0 {
            let phi = cut.max(0.0) / denom;
            if phi < best_phi {
                best_phi = phi;
                best_len = i + 1;
            }
        }
    }
    let mut members: Vec<u32> = order[..best_len].to_vec();
    members.sort_unstable();
    // Recompute from the final set: authoritative, and covers the case
    // where no sweep prefix qualified (best_phi untouched).
    let phi = conductance(g, &members);
    Ok(LocalCluster {
        members,
        conductance: phi,
        pushes,
    })
}

/// Local clustering of a *directed* graph around a seed: Random-walk
/// symmetrization (which preserves directed normalized cuts, §3.2) followed
/// by PageRank-Nibble. This is the framework's answer to Andersen et al.'s
/// directed local partitioning.
pub fn pagerank_nibble_directed(
    g: &DiGraph,
    seed: usize,
    opts: &NibbleOptions,
) -> Result<LocalCluster> {
    let sym = RandomWalk::default()
        .symmetrize(g)
        .map_err(|e| ClusterError::InvalidConfig(format!("symmetrization failed: {e}")))?;
    pagerank_nibble(sym.graph(), seed, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques_un(k: usize) -> UnGraph {
        let mut edges = Vec::new();
        for base in [0, k] {
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((k - 1, k));
        UnGraph::from_edges(2 * k, &edges).unwrap()
    }

    #[test]
    fn ppr_mass_concentrates_near_seed() {
        let g = two_cliques_un(6);
        let (p, pushes) = approximate_ppr(&g, 0, 0.15, 1e-6).unwrap();
        assert!(pushes > 0);
        // Seed-side mass exceeds far-side mass.
        let near: f64 = p[..6].iter().sum();
        let far: f64 = p[6..].iter().sum();
        assert!(near > 3.0 * far, "near {near} far {far}");
        // Approximation never exceeds total mass 1.
        assert!(p.iter().sum::<f64>() <= 1.0 + 1e-9);
    }

    #[test]
    fn nibble_recovers_seed_clique() {
        let g = two_cliques_un(8);
        let c = pagerank_nibble(&g, 2, &NibbleOptions::default()).unwrap();
        assert_eq!(c.members, (0..8).collect::<Vec<u32>>());
        // Conductance of a k-clique with one external edge: 1/vol.
        assert!(c.conductance < 0.05, "phi = {}", c.conductance);
    }

    #[test]
    fn nibble_from_other_side() {
        let g = two_cliques_un(8);
        let c = pagerank_nibble(&g, 12, &NibbleOptions::default()).unwrap();
        assert_eq!(c.members, (8..16).collect::<Vec<u32>>());
    }

    #[test]
    fn conductance_hand_computed() {
        let g = two_cliques_un(4);
        // Clique side: vol = 3*4 + 1 = 13, cut = 1 → φ = 1/13.
        let phi = conductance(&g, &[0, 1, 2, 3]);
        assert!((phi - 1.0 / 13.0).abs() < 1e-12);
        // Whole graph: cut 0.
        let all: Vec<u32> = (0..8).collect();
        assert_eq!(conductance(&g, &all), 0.0);
    }

    #[test]
    fn isolated_seed_is_own_cluster() {
        let g = UnGraph::from_edges(4, &[(0, 1)]).unwrap();
        let c = pagerank_nibble(&g, 3, &NibbleOptions::default()).unwrap();
        assert_eq!(c.members, vec![3]);
    }

    #[test]
    fn max_cluster_size_caps_sweep() {
        let g = two_cliques_un(8);
        let c = pagerank_nibble(
            &g,
            0,
            &NibbleOptions {
                max_cluster_size: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(c.members.len() <= 3);
    }

    #[test]
    fn rejects_bad_arguments() {
        let g = two_cliques_un(3);
        assert!(approximate_ppr(&g, 99, 0.15, 1e-4).is_err());
        assert!(approximate_ppr(&g, 0, 0.0, 1e-4).is_err());
        assert!(approximate_ppr(&g, 0, 1.5, 1e-4).is_err());
        assert!(approximate_ppr(&g, 0, 0.15, 0.0).is_err());
    }

    #[test]
    fn directed_nibble_finds_shared_link_cluster() {
        // Figure-1 graph: nibble from node 4 should pull in node 5's
        // neighborhood via the random-walk symmetrization.
        let g = symclust_graph::generators::two_cliques(6);
        let c = pagerank_nibble_directed(&g, 0, &NibbleOptions::default()).unwrap();
        // Seed-side clique recovered.
        for i in 0..6u32 {
            assert!(c.members.contains(&i), "missing {i}: {:?}", c.members);
        }
    }

    #[test]
    fn coarser_epsilon_does_less_work() {
        let g = two_cliques_un(10);
        let fine = pagerank_nibble(
            &g,
            0,
            &NibbleOptions {
                epsilon: 1e-7,
                ..Default::default()
            },
        )
        .unwrap();
        let coarse = pagerank_nibble(
            &g,
            0,
            &NibbleOptions {
                epsilon: 1e-3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(coarse.pushes <= fine.pushes);
    }
}

//! Property-based tests for the clustering algorithms.

use proptest::prelude::*;
use symclust_cluster::graclus_like::normalized_cut;
use symclust_cluster::mcl::{canonical_flow, inflate_and_prune, MclOptions};
use symclust_cluster::metis_like::{edge_cut, kway_refine, recursive_bisection_partition};
use symclust_cluster::{ClusterAlgorithm, GraclusLike, MetisLike, MlrMcl};
use symclust_graph::UnGraph;

/// Strategy: a random undirected graph with at least a few edges.
fn ungraph(max_n: usize, max_edges: usize) -> impl Strategy<Value = UnGraph> {
    (4..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 1..max_edges)
            .prop_map(move |edges| UnGraph::from_edges(n, &edges).expect("in-bounds edges"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metis_partition_is_valid(g in ungraph(40, 150), k in 1usize..8) {
        let c = MetisLike::with_k(k).cluster_ungraph(&g).unwrap();
        prop_assert_eq!(c.n_nodes(), g.n_nodes());
        // Every node assigned; cluster ids dense.
        for node in 0..g.n_nodes() {
            prop_assert!((c.cluster_of(node) as usize) < c.n_clusters());
        }
        if k < g.n_nodes() {
            prop_assert_eq!(c.n_clusters(), k);
        }
    }

    #[test]
    fn graclus_partition_is_valid(g in ungraph(40, 150), k in 1usize..8) {
        let c = GraclusLike::with_k(k).cluster_ungraph(&g).unwrap();
        prop_assert_eq!(c.n_nodes(), g.n_nodes());
        let sizes = c.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.n_nodes());
        prop_assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn mlrmcl_partition_is_valid(g in ungraph(30, 100)) {
        let c = MlrMcl::default().cluster_ungraph(&g).unwrap();
        prop_assert_eq!(c.n_nodes(), g.n_nodes());
        let sizes = c.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.n_nodes());
        prop_assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn canonical_flow_is_row_stochastic(g in ungraph(30, 100)) {
        let m = canonical_flow(&g);
        for row in 0..m.n_rows() {
            let s: f64 = m.row_values(row).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9, "row {row} sums to {s}");
        }
    }

    #[test]
    fn inflation_preserves_stochasticity(g in ungraph(30, 100), r in 1.1f64..4.0) {
        let m = canonical_flow(&g);
        let opts = MclOptions { inflation: r, ..Default::default() };
        let i = inflate_and_prune(&m, &opts);
        for row in 0..i.n_rows() {
            let s: f64 = i.row_values(row).iter().sum();
            // Rows with entries must renormalize to 1.
            prop_assert!(s.abs() < 1e-12 || (s - 1.0).abs() < 1e-9);
            prop_assert!(i.row_nnz(row) <= opts.max_row_nnz);
        }
    }

    #[test]
    fn kway_refine_never_increases_cut(g in ungraph(30, 120), k in 2usize..6) {
        let n = g.n_nodes();
        let mut assignment: Vec<u32> = (0..n).map(|i| (i % k) as u32).collect();
        let weights = vec![1.0; n];
        let before = edge_cut(&g, &assignment);
        kway_refine(&g, &weights, &mut assignment, k, 0.5, 4, 7);
        let after = edge_cut(&g, &assignment);
        prop_assert!(after <= before + 1e-9, "cut went {before} -> {after}");
        // Still a valid assignment.
        prop_assert!(assignment.iter().all(|&a| (a as usize) < k));
    }

    #[test]
    fn recursive_bisection_produces_k_parts(g in ungraph(40, 150), k in 2usize..8) {
        let n = g.n_nodes();
        prop_assume!(k <= n);
        let a = recursive_bisection_partition(&g, &vec![1.0; n], k, 0.3, 4, 11);
        let mut seen = vec![false; k];
        for &x in &a {
            prop_assert!((x as usize) < k);
            seen[x as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "empty part in {a:?}");
    }

    #[test]
    fn normalized_cut_bounds(g in ungraph(30, 120), k in 1usize..6) {
        let n = g.n_nodes();
        let assignment: Vec<u32> = (0..n).map(|i| (i % k) as u32).collect();
        let ncut = normalized_cut(&g, &assignment, k);
        prop_assert!(ncut >= -1e-12);
        prop_assert!(ncut <= k as f64 + 1e-9);
    }

    #[test]
    fn fused_kernel_matches_two_step_pipeline(g in ungraph(25, 90), r in 1.2f64..3.0) {
        use symclust_cluster::mcl::expand_inflate_prune;
        use symclust_sparse::spgemm;
        let m_g = canonical_flow(&g);
        let opts = MclOptions { inflation: r, ..Default::default() };
        let fused = expand_inflate_prune(&m_g, &m_g, &opts);
        let two_step = inflate_and_prune(&spgemm(&m_g, &m_g).unwrap(), &opts);
        prop_assert_eq!(fused.indptr(), two_step.indptr());
        prop_assert_eq!(fused.indices(), two_step.indices());
        for (a, b) in fused.values().iter().zip(two_step.values()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn clusterers_are_deterministic(g in ungraph(25, 80), k in 2usize..5) {
        let a = MetisLike::with_k(k).cluster_ungraph(&g).unwrap();
        let b = MetisLike::with_k(k).cluster_ungraph(&g).unwrap();
        prop_assert_eq!(a.assignments(), b.assignments());
        let a = MlrMcl::default().cluster_ungraph(&g).unwrap();
        let b = MlrMcl::default().cluster_ungraph(&g).unwrap();
        prop_assert_eq!(a.assignments(), b.assignments());
    }
}

//! Property-based tests for PageRank-Nibble local partitioning.

use proptest::prelude::*;
use symclust_cluster::local::{approximate_ppr, conductance};
use symclust_cluster::{pagerank_nibble, NibbleOptions};
use symclust_graph::UnGraph;

fn ungraph_with_seed(max_n: usize) -> impl Strategy<Value = (UnGraph, usize)> {
    (4..max_n).prop_flat_map(move |n| {
        (proptest::collection::vec((0..n, 0..n), 1..(4 * n)), 0..n).prop_map(
            move |(edges, seed)| {
                (
                    UnGraph::from_edges(n, &edges).expect("in-bounds edges"),
                    seed,
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ppr_mass_is_a_subprobability((g, seed) in ungraph_with_seed(40)) {
        let (p, _) = approximate_ppr(&g, seed, 0.15, 1e-4).unwrap();
        let total: f64 = p.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9, "total mass {total}");
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn nibble_cluster_contains_connected_seed_or_is_sane((g, seed) in ungraph_with_seed(40)) {
        let c = pagerank_nibble(&g, seed, &NibbleOptions::default()).unwrap();
        prop_assert!(!c.members.is_empty());
        // Members are valid, sorted, unique.
        prop_assert!(c.members.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(c.members.iter().all(|&m| (m as usize) < g.n_nodes()));
        prop_assert!(c.conductance >= 0.0);
        // Reported conductance matches a fresh computation.
        if (c.members.len() as f64) > 0.0 {
            let phi = conductance(&g, &c.members);
            if phi.is_finite() && c.conductance.is_finite() {
                prop_assert!((phi - c.conductance).abs() < 1e-9,
                    "sweep said {} but recompute gives {phi}", c.conductance);
            }
        }
    }

    #[test]
    fn max_cluster_size_is_respected((g, seed) in ungraph_with_seed(40), cap in 1usize..10) {
        let c = pagerank_nibble(
            &g,
            seed,
            &NibbleOptions {
                max_cluster_size: cap,
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert!(c.members.len() <= cap.max(1));
    }

    #[test]
    fn conductance_is_scale_invariant((g, seed) in ungraph_with_seed(30)) {
        // Multiplying all edge weights by a constant must not change the
        // nibble result (the scale-invariance bug class caught in review).
        // A power of two keeps every float operation exact, so the runs
        // are bit-identical rather than merely approximately equal.
        let scaled = {
            let mut adj = g.adjacency().clone();
            for v in adj.values_mut() {
                *v *= (0.5f64).powi(17);
            }
            UnGraph::from_symmetric_unchecked(adj)
        };
        let a = pagerank_nibble(&g, seed, &NibbleOptions::default()).unwrap();
        let b = pagerank_nibble(&scaled, seed, &NibbleOptions::default()).unwrap();
        prop_assert_eq!(a.members, b.members);
    }
}
